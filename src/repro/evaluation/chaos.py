"""Chaos harness: seeded, deterministic fault schedules for both runtimes.

The bridge must keep translating transparently while the deployment around
it misbehaves.  The elastic control plane made resizing loss-free; this
module *adversarially* exercises that promise: a seeded schedule of
membership faults — grows, suffix shrinks, **arbitrary-worker removals**,
worker replacements — is interleaved with waves of concurrent legacy
clients, garbage traffic aimed at the bridge's public endpoints and colour
groups, and (on the simulation) packet-loss windows.  After every run the
harness checks the whole loss-free contract at once:

* every client lookup is answered (zero dropped sessions);
* no session was evicted by the idle sweeper (zero abandoned sessions);
* nothing was unrouted (garbage never parses, so it never counts);
* no worker-loop thread raised (live runtime);
* the raw bytes every client received are **identical to a fixed-shard
  twin** of the same workload — chaos may change timings, never outputs.

Determinism is the point: every random decision — which fault fires in
which round, which worker is the victim, how lossy a loss window is —
comes from one ``random.Random(seed)``, so a failing seed reproduces the
exact same schedule locally (``python -m repro.evaluation --table chaos
--seed N``).  The tier-1 soak test and ``benchmarks/bench_chaos.py`` both
print the seed of any failing run for exactly that reason.

Faults on the simulation run on the virtual clock (loss windows open only
while no legitimate traffic is in flight, because lost datagrams of a
live session would — correctly — fail the zero-drop assertion the harness
exists to make).  The live runner drives the same membership schedule over
real sockets; loss injection does not exist there, so its rounds fire
garbage only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bridges.specs import BRIDGE_BUILDERS, CASE_NAMES
from ..core.errors import ConfigurationError
from ..network.addressing import Endpoint, Transport
from ..network.simulated import SimulatedNetwork
from ..obs import (
    EventJournal,
    FlightRecorder,
    LiveMetricsCollector,
    MetricsCollector,
)
from ..runtime import (
    FailureDetector,
    HealthController,
    HealthPolicy,
    LiveHealthController,
    LiveShardedRuntime,
    ScaleEvent,
    ShardedRuntime,
    wedge_live_worker,
    wedge_simulated_worker,
)
from .workloads import (
    _elastic_calibration,
    _fast_calibration,
    _live_bridge,
    _live_case_parts,
    _make_client_and_service,
    _make_concurrent_clients,
)

__all__ = [
    "ChaosEvent",
    "ChaosResult",
    "run_chaos_simulated",
    "run_chaos_live",
    "run_chaos",
    "DEFAULT_CHAOS_SEEDS",
    "GARBAGE_PAYLOADS",
    "HealResult",
    "run_heal_simulated",
    "run_heal_live",
    "run_heal",
    "DEFAULT_HEAL_SEEDS",
]

#: Seeds of the default chaos sweep (the acceptance criterion's ">= 3").
DEFAULT_CHAOS_SEEDS: Tuple[int, ...] = (7, 11, 13)

#: Junk the injector throws at the bridge's public endpoints and colour
#: groups: none of it parses under any MDL spec, so the engines must record
#: parse failures and carry on — garbage never becomes a session and never
#: counts as unrouted.
GARBAGE_PAYLOADS: Tuple[bytes, ...] = (
    b"",
    b"\x00",
    b"\xff" * 48,
    b"chaos \x00\x01\x02 not-a-protocol\r\n\r\n",
)

_LIVE_HOST = "127.0.0.1"

#: Membership faults a round can fire (weighted towards the arbitrary
#: removals this harness exists to cover).
_MEMBERSHIP_KINDS = ("grow", "shrink", "remove", "remove", "replace", "hold")


@dataclass(frozen=True)
class ChaosEvent:
    """One executed fault of a chaos run's schedule."""

    round: int
    #: ``grow`` | ``shrink`` | ``remove`` | ``replace`` | ``garbage`` |
    #: ``loss`` | ``hold``
    kind: str
    detail: str = ""

    def as_row(self) -> Dict[str, object]:
        return {"round": self.round, "kind": self.kind, "detail": self.detail}


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos run (plus its fixed-shard twin check)."""

    name: str
    seed: int
    #: ``simulated`` | ``live``
    runtime_kind: str
    rounds: int
    clients: int
    completed: int
    events: List[ChaosEvent] = field(default_factory=list)
    #: The runtime's scaling timeline, for the audit trail.
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: Membership faults executed (everything but garbage/loss/hold).
    membership_ops: int = 0
    #: Drains of a worker that was *not* the last pool position — the
    #: arbitrary-removal coverage the suffix-only ring could never give.
    arbitrary_removals: int = 0
    garbage_sent: int = 0
    #: Datagrams dropped by the loss windows (simulated runs only).
    datagrams_dropped: int = 0
    abandoned_sessions: int = 0
    unrouted: int = 0
    worker_errors: int = 0
    final_workers: int = 0
    outputs_match_twin: bool = False
    #: A harness-level exception (e.g. a live drain timeout's
    #: ``EngineError``) caught by :func:`run_chaos`, so even a crashed run
    #: reports its seed instead of losing the repro path to a traceback.
    error: Optional[str] = None
    #: Per-stage latency attribution rows (always-on histograms), so a
    #: chaos run reports *where* time went while membership churned.
    stage_latency: List[Dict[str, object]] = field(default_factory=list)
    #: Structured span-tree export (``runtime.trace_export()``), populated
    #: when the run sampled spans (``trace_sample`` > 0).  Span ``at``
    #: positions and :attr:`scale_events` times share one clock, so the
    #: membership faults interleave with datagram traces on one timeline.
    trace: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """The whole loss-free contract, as one boolean."""
        return (
            self.error is None
            and self.completed == self.clients
            and self.abandoned_sessions == 0
            and self.unrouted == 0
            and self.worker_errors == 0
            and self.outputs_match_twin
        )

    def repro_command(self) -> str:
        """The exact shell line that replays this run's schedule.

        Includes the ``PYTHONPATH=src`` prefix (the package is only
        importable from a source checkout that way), and ``--chaos-live``
        for a live row — without the flag the command would replay only
        the simulated schedule and a red live run would not be
        reproducible via its own printed repro path.
        """
        command = (
            "PYTHONPATH=src python -m repro.evaluation --table chaos "
            f"--seed {self.seed}"
        )
        if self.runtime_kind == "live":
            command += " --chaos-live"
        return command

    def failure_reason(self) -> Optional[str]:
        """Why :attr:`ok` is false (``None`` on a clean run)."""
        if self.error is not None:
            return f"harness exception: {self.error}"
        if self.completed != self.clients:
            return f"{self.clients - self.completed} of {self.clients} lookups unanswered"
        if self.abandoned_sessions:
            return f"{self.abandoned_sessions} sessions abandoned (evicted)"
        if self.unrouted:
            return f"{self.unrouted} datagrams unrouted"
        if self.worker_errors:
            return f"{self.worker_errors} worker-loop exceptions"
        if not self.outputs_match_twin:
            return "client bytes differ from the fixed-shard twin"
        return None

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "runtime": self.runtime_kind,
            "rounds": self.rounds,
            "clients": self.clients,
            "completed": self.completed,
            "membership_ops": self.membership_ops,
            "arbitrary_removals": self.arbitrary_removals,
            "garbage_sent": self.garbage_sent,
            "datagrams_dropped": self.datagrams_dropped,
            "abandoned": self.abandoned_sessions,
            "unrouted": self.unrouted,
            "worker_errors": self.worker_errors,
            "final_workers": self.final_workers,
            "outputs_match_twin": self.outputs_match_twin,
            "error": self.error,
            "ok": self.ok,
            "events": [event.as_row() for event in self.events],
            "stage_latency": self.stage_latency,
        }


def _case_parts(case: int, total_clients: int, live: bool):
    """Clients / service / lookup target of ``case``, chaos edition.

    Delegates to the existing workload builders — the live branch *is*
    :func:`~repro.evaluation.workloads._live_case_parts`, so the chaos
    byte-twin comparison can never drift from the topology the
    live-sharding harness checks.
    """
    if live:
        clients, service, target, _ = _live_case_parts(case, total_clients)
        return clients, service, target
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    clients = _make_concurrent_clients(client_protocol, total_clients)
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, _elastic_calibration()
    )
    return clients, service, target


def _pick_membership(rng: random.Random, workers: int, bounds) -> str:
    minimum, maximum = bounds
    kinds = [
        kind
        for kind in _MEMBERSHIP_KINDS
        if (kind != "grow" or workers < maximum)
        and (kind not in ("shrink", "remove") or workers > minimum)
        # A replacement never shrinks the pool, but it does grow it
        # transiently — keep headroom under the bound.
        and (kind != "replace" or workers < maximum)
    ]
    return rng.choice(kinds) if kinds else "hold"


def _pick_victim(rng: random.Random, worker_ids: Sequence[int]) -> Tuple[int, bool]:
    """A victim id, preferring a non-suffix position; returns (id, arbitrary)."""
    ids = list(worker_ids)
    if len(ids) > 1:
        victim = rng.choice(ids[:-1])  # never the last position: the drain
        return victim, True  # is guaranteed non-suffix
    return ids[-1], False


def _garbage_targets(runtime) -> List[Endpoint]:
    """The bridge's public UDP endpoints plus its multicast colour groups."""
    router = runtime.router
    assert router is not None
    targets = [
        endpoint
        for endpoint in router.unicast_endpoints()
        if endpoint.transport == Transport.UDP
    ]
    targets.extend(router.multicast_groups())
    return targets


def _send_garbage(network, runtime, source: Endpoint) -> int:
    sent = 0
    for destination in _garbage_targets(runtime):
        for payload in GARBAGE_PAYLOADS:
            network.send(payload, source=source, destination=destination)
            sent += 1
    return sent


def _apply_membership(
    runtime, rng: random.Random, kind: str, result: ChaosResult, round_index: int
) -> None:
    """Execute one membership fault against a settled runtime."""
    ids = runtime.worker_ids
    if kind == "grow":
        runtime.scale_to(len(ids) + 1)
        result.events.append(
            ChaosEvent(round_index, "grow", f"{len(ids)}->{len(ids) + 1}")
        )
    elif kind == "shrink":
        strategy = rng.choice(("suffix", "least-loaded"))
        victims = runtime.select_victims(1, strategy)
        runtime.scale_to(len(ids) - 1, victims=victims)
        result.events.append(
            ChaosEvent(round_index, "shrink", f"{strategy} victims={victims}")
        )
        if victims[0] != ids[-1]:
            result.arbitrary_removals += 1
    elif kind == "remove":
        victim, arbitrary = _pick_victim(rng, ids)
        runtime.remove_worker(victim)
        result.events.append(ChaosEvent(round_index, "remove", f"worker {victim}"))
        if arbitrary:
            result.arbitrary_removals += 1
    elif kind == "replace":
        victim, arbitrary = _pick_victim(rng, ids)
        new_id = runtime.replace_worker(victim)
        result.events.append(
            ChaosEvent(round_index, "replace", f"worker {victim} -> {new_id}")
        )
        if arbitrary:
            result.arbitrary_removals += 1
    else:
        result.events.append(ChaosEvent(round_index, "hold"))
    if kind != "hold":
        result.membership_ops += 1


def _collect_bytes(clients) -> Dict[str, Tuple[bytes, ...]]:
    return {client.name: tuple(client.raw_responses) for client in clients}


#: Per-message translation compute of the simulated chaos topology.
SIM_PROCESSING_DELAY = 0.004


def _deploy_simulated(
    case: int,
    seed: int,
    total_clients: int,
    workers: int,
    live_topology: bool,
    trace_sample: Optional[float] = None,
):
    """Deploy one simulated chaos topology: network, runtime, clients.

    The **single** deploy recipe shared by the chaos run and both twin
    builders — the byte-twin oracle is only meaningful while the chaotic
    and fixed-shard topologies are built identically, so there must be
    exactly one place that builds them.  ``live_topology`` selects the
    loopback layout of the *live* workload (the reference the live chaos
    run is compared against) instead of the model-level one.
    ``trace_sample`` overrides the runtime's span-sampling rate (the twin
    builders leave it at the default — tracing never changes outputs).
    """
    overrides: Dict[str, object] = {}
    if trace_sample is not None:
        overrides["trace_sample"] = trace_sample
    clients, service, target = _case_parts(case, total_clients, live=live_topology)
    if live_topology:
        network = SimulatedNetwork(latencies=_fast_calibration(), seed=seed)
        runtime = ShardedRuntime.from_bridge(
            _live_bridge(case, 0.0),
            workers=workers,
            serialize_processing=True,
            ephemeral_ports=False,
            worker_port_stride=16,
            **overrides,
        )
    else:
        network = SimulatedNetwork(latencies=_elastic_calibration(), seed=seed)
        bridge = BRIDGE_BUILDERS[case](processing_delay=SIM_PROCESSING_DELAY)
        bridge.validate()
        runtime = ShardedRuntime.from_bridge(
            bridge, workers=workers, serialize_processing=True, **overrides
        )
    runtime.deploy(network)
    network.attach(service)
    for client in clients:
        network.attach(client)
    return network, runtime, clients, target


def _twin_bytes(
    case: int,
    seed: int,
    total: int,
    workers: int,
    timeout: float,
    live_topology: bool,
) -> Dict[str, Tuple[bytes, ...]]:
    """The fixed-shard twin: same clients, no faults, ``workers`` shards."""
    network, _, clients, target = _deploy_simulated(
        case, seed, total, workers, live_topology
    )
    started = [(client, client.start_lookup(network, target)) for client in clients]
    network.run_until(
        lambda: all(client.lookup_result(key) is not None for client, key in started),
        timeout=timeout,
    )
    return _collect_bytes(clients)


# ----------------------------------------------------------------------
# simulated chaos
# ----------------------------------------------------------------------
def run_chaos_simulated(
    case: int = 2,
    seed: int = 7,
    rounds: int = 5,
    clients_per_round: int = 6,
    min_workers: int = 1,
    max_workers: int = 4,
    start_workers: int = 2,
    twin_workers: int = 2,
    wave_timeout: float = 30.0,
    trace_sample: Optional[float] = None,
) -> ChaosResult:
    """One seeded chaos run on the simulated runtime, plus its twin check.

    Every round starts a wave of concurrent lookups, fires one membership
    fault *while the wave is in flight* (racing the drain against open
    sessions and fan-out legs), floods the public endpoints with garbage,
    waits for the wave to complete and the pool to settle, and then — on
    the rounds the schedule says so — opens a packet-loss window over
    another garbage burst.  The twin run serves the identical client set
    on a fixed ``twin_workers``-shard pool with no faults; its bytes are
    the reference the chaos run must reproduce exactly.

    ``trace_sample`` turns span capture on (1.0 = every datagram): the
    result then carries a full ``trace`` export whose span positions share
    the virtual clock with the membership ``scale_events``.  Stage-latency
    attribution is recorded regardless (histograms are unconditional).
    """
    rng = random.Random(seed)
    total = rounds * clients_per_round
    network, runtime, clients, target = _deploy_simulated(
        case, seed, total, start_workers, live_topology=False,
        trace_sample=trace_sample,
    )

    result = ChaosResult(
        name=f"chaos-case-{case}-seed-{seed}",
        seed=seed,
        runtime_kind="simulated",
        rounds=rounds,
        clients=total,
        completed=0,
    )
    injector = Endpoint("chaos-injector.local", 9999, Transport.UDP)
    started: List[Tuple[object, object]] = []
    dropped_before = network.dropped

    for round_index in range(rounds):
        wave = clients[
            round_index * clients_per_round : (round_index + 1) * clients_per_round
        ]
        wave_started = [
            (client, client.start_lookup(network, target)) for client in wave
        ]
        started.extend(wave_started)
        # Let the wave's sessions open, then fault the membership while
        # they are in flight: the drain must race live sessions, sticky
        # pins and fan-out legs, not an idle pool.
        network.run_for(0.004)
        kind = _pick_membership(rng, runtime.worker_count, (min_workers, max_workers))
        _apply_membership(runtime, rng, kind, result, round_index)
        result.garbage_sent += _send_garbage(network, runtime, injector)
        result.events.append(ChaosEvent(round_index, "garbage"))
        wave_settled = network.run_until(
            lambda: all(
                client.lookup_result(key) is not None for client, key in wave_started
            )
            and not runtime.scaling_in_progress,
            timeout=wave_timeout,
        )
        # Settle before a loss window: with no legitimate traffic in
        # flight, loss can only eat garbage — the zero-drop assertion
        # stays meaningful.  Draw from the rng unconditionally so the
        # schedule is a pure function of the seed, but only OPEN the
        # window when the wave really finished: a timed-out wave still in
        # flight must surface as the unanswered-lookup failure it is, not
        # as loss eating its datagrams.
        network.run_for(3 * runtime.drain_poll_interval)
        open_loss, loss = rng.random() < 0.5, rng.uniform(0.5, 1.0)
        if open_loss and wave_settled:
            network.loss_rate = loss
            result.garbage_sent += _send_garbage(network, runtime, injector)
            network.run_for(0.05)
            network.loss_rate = 0.0
            result.events.append(
                ChaosEvent(round_index, "loss", f"rate={loss:.2f}")
            )

    network.run_until(
        lambda: all(client.lookup_result(key) is not None for client, key in started)
        and not runtime.scaling_in_progress,
        timeout=wave_timeout,
    )
    result.completed = sum(
        1
        for client, key in started
        if (found := client.lookup_result(key)) is not None and found.found
    )
    result.datagrams_dropped = network.dropped - dropped_before
    result.abandoned_sessions = len(runtime.evicted_sessions)
    result.unrouted = runtime.unrouted_datagrams
    result.final_workers = runtime.worker_count
    result.scale_events = list(runtime.scale_events)
    result.stage_latency = [row.as_row() for row in runtime.stage_latency()]
    if trace_sample:
        result.trace = runtime.trace_export()
    chaos_bytes = _collect_bytes(clients)

    twin_bytes = _twin_bytes(
        case, seed, total, twin_workers, wave_timeout, live_topology=False
    )
    result.outputs_match_twin = chaos_bytes == twin_bytes
    return result


# ----------------------------------------------------------------------
# live chaos
# ----------------------------------------------------------------------
def run_chaos_live(
    case: int = 2,
    seed: int = 7,
    rounds: int = 3,
    clients_per_round: int = 4,
    min_workers: int = 1,
    max_workers: int = 3,
    start_workers: int = 2,
    twin_workers: int = 2,
    wave_timeout: float = 15.0,
    trace_sample: Optional[float] = None,
) -> ChaosResult:
    """One seeded chaos run on the **live** runtime (real loopback sockets).

    The same membership schedule as the simulated runner — grows, shrinks,
    arbitrary removals, replacements, all racing real in-flight waves —
    plus garbage datagrams thrown at the router's real sockets.  Packet
    loss cannot be injected into a kernel loopback path, so live rounds
    have no loss windows.  The byte reference is the deterministic
    *simulated* twin of the identical loopback topology at a fixed shard
    count (the same cross-engine check the live-sharding table performs).
    """
    import time as _time

    from ..network.sockets import SocketNetwork

    rng = random.Random(seed)
    total = rounds * clients_per_round
    overrides: Dict[str, object] = {}
    if trace_sample is not None:
        overrides["trace_sample"] = trace_sample
    clients, service, target = _case_parts(case, total, live=True)
    network = SocketNetwork()
    runtime = LiveShardedRuntime.from_bridge(
        _live_bridge(case, 0.0), workers=start_workers, **overrides
    )
    result = ChaosResult(
        name=f"chaos-live-case-{case}-seed-{seed}",
        seed=seed,
        runtime_kind="live",
        rounds=rounds,
        clients=total,
        completed=0,
    )
    injector = Endpoint(_LIVE_HOST, 45999, Transport.UDP)
    started: List[Tuple[object, object]] = []

    def wave_done(pairs) -> bool:
        return all(client.lookup_result(key) is not None for client, key in pairs)

    def await_wave(pairs) -> None:
        deadline = _time.monotonic() + wave_timeout
        while _time.monotonic() < deadline and not wave_done(pairs):
            if runtime.worker_errors:
                return
            _time.sleep(0.002)

    try:
        runtime.deploy(network)
        network.attach(service)
        for client in clients:
            network.attach(client)
        for round_index in range(rounds):
            wave = clients[
                round_index * clients_per_round : (round_index + 1) * clients_per_round
            ]
            wave_started = [
                (client, client.start_lookup(network, target)) for client in wave
            ]
            started.extend(wave_started)
            kind = _pick_membership(
                rng, runtime.worker_count, (min_workers, max_workers)
            )
            # The live membership ops block through the drain — which is
            # exactly the race: the wave above is still in flight.
            _apply_membership(runtime, rng, kind, result, round_index)
            result.garbage_sent += _send_garbage(network, runtime, injector)
            result.events.append(ChaosEvent(round_index, "garbage"))
            await_wave(wave_started)
        await_wave(started)
        result.completed = sum(
            1
            for client, key in started
            if (found := client.lookup_result(key)) is not None and found.found
        )
        result.abandoned_sessions = len(runtime.evicted_sessions)
        result.unrouted = runtime.unrouted_datagrams
        result.worker_errors = len(runtime.worker_errors)
        result.final_workers = runtime.worker_count
        result.scale_events = list(runtime.scale_events)
        chaos_bytes = _collect_bytes(clients)
    finally:
        runtime.undeploy()
        network.close()

    # The tracer outlives the deployment, so attribution is harvested
    # after the teardown above.
    result.stage_latency = [row.as_row() for row in runtime.stage_latency()]
    if trace_sample:
        result.trace = runtime.trace_export()

    # The live run's byte reference: a fixed-shard *simulated* twin of the
    # same loopback topology (same hosts, ports, pinned transaction ids).
    result.outputs_match_twin = chaos_bytes == _twin_bytes(
        case, seed, total, twin_workers, wave_timeout, live_topology=True
    )
    return result


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def _check_options(case: int, options: Dict[str, object]) -> None:
    """Fail fast on caller misconfiguration, *before* any seed runs.

    Everything that raises here is independent of the seed — an unknown
    case, a non-positive size — so surfacing it as an exception (the CLI's
    uniform ``error:`` exit) beats folding it into per-seed FAIL rows
    whose printed seed-replay command would not reproduce it.  Exceptions
    raised later, mid-schedule, ARE seed-reproducible and are folded.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    for key in (
        "rounds",
        "clients_per_round",
        "min_workers",
        "max_workers",
        "start_workers",
        "twin_workers",
    ):
        value = options.get(key)
        if value is not None and (not isinstance(value, int) or value <= 0):
            raise ConfigurationError(
                f"chaos option {key!r} must be a positive integer, got {value!r}"
            )


def run_chaos(
    case: int = 2,
    seeds: Sequence[int] = DEFAULT_CHAOS_SEEDS,
    include_live: bool = False,
    raise_on_failure: bool = True,
    **options,
) -> List[ChaosResult]:
    """The chaos sweep: one simulated run per seed (plus one live run).

    With ``raise_on_failure`` (the default) raises ``RuntimeError`` naming
    the **failing seed** when any run breaks the loss-free contract, so a
    red sweep is reproducible with
    ``python -m repro.evaluation --table chaos --seed <seed>``; with it
    off the rows come back regardless, carrying their per-run ``ok``.
    Either way a run that *crashes* (a live drain-timeout ``EngineError``,
    a wedged simulated drain's ``ConfigurationError``) is folded into a
    failed row carrying its seed rather than lost to a bare traceback —
    the failing-seed log must name every red seed.  Only *pre-flight*
    configuration mistakes (an unknown case, a non-positive worker count)
    raise directly: those are the caller's bug, and replaying a seed would
    not reproduce them, so a FAIL row would print a phantom repro command.
    """
    if not seeds:
        raise ConfigurationError(
            "a chaos sweep needs at least one seed — an empty sweep would "
            "report 'all runs loss-free' having run nothing"
        )
    _check_options(case, options)

    def _guarded(runner, kind: str, seed: int, **runner_options) -> ChaosResult:
        try:
            return runner(case=case, seed=seed, **runner_options)
        except Exception as exc:  # noqa: BLE001 - every seed must report
            prefix = "chaos-live" if kind == "live" else "chaos"
            return ChaosResult(
                name=f"{prefix}-case-{case}-seed-{seed}",
                seed=seed,
                runtime_kind=kind,
                rounds=0,
                clients=0,
                completed=0,
                error=f"{type(exc).__name__}: {exc}",
            )

    results = [
        _guarded(run_chaos_simulated, "simulated", seed, **options)
        for seed in seeds
    ]
    if include_live:
        # Explicit options apply to the live run too (its own smaller
        # defaults only cover the keys the caller left unset), so one
        # sweep never silently mixes parameters between its rows.
        results.append(_guarded(run_chaos_live, "live", seeds[0], **options))
    failures = [result for result in results if not result.ok]
    if failures and raise_on_failure:
        first = failures[0]
        raise RuntimeError(
            f"chaos run {first.name} (seed {first.seed}, {first.runtime_kind}) "
            f"failed: {first.failure_reason()} — reproduce with "
            f"`{first.repro_command()}`"
        )
    return results


# ----------------------------------------------------------------------
# self-healing chaos: the failure detector under injected faults
# ----------------------------------------------------------------------
#: Seeds of the default heal sweep.
DEFAULT_HEAL_SEEDS: Tuple[int, ...] = (5, 17)

#: Faults a heal round can fire.  ``wedge`` stalls one worker (the
#: detector must replace it), ``skew`` delays heartbeat pulses below the
#: hysteresis budget (the detector must NOT replace anything), ``loss``
#: opens a packet-loss window over garbage, ``hold`` does nothing.
_HEAL_FAULT_KINDS = ("wedge", "skew", "loss", "hold")

#: Simulated heal-run detection knobs.  Snappier than the
#: :class:`~repro.runtime.health.HealthPolicy` defaults because the
#: virtual clock makes probes free: the heartbeat threshold sits well
#: above the probe interval (healthy age ~ one interval plus backlog)
#: and the backlog ceiling well above the per-delivery compute
#: (:data:`SIM_PROCESSING_DELAY`), while a 0.5 s+ wedge crosses both
#: ceilings on the first probe after the stall.
_SIM_HEAL_POLICY = HealthPolicy(
    heartbeat_wedge_threshold=0.15,
    busy_backlog_ceiling=0.3,
    suspect_after=2,
    fail_after=4,
    cooldown=0.5,
)
_SIM_HEAL_PROBE_INTERVAL = 0.02

#: Live heal-run detection knobs.  The live loops run with zero
#: processing delay, so the wedge signature is a stale ``heartbeat_at``
#: stamp (plus a backed-up queue): the threshold leaves several probe
#: intervals of scheduler jitter before a probe reads bad, and
#: ``fail_after`` keeps one contended tick from replacing anything.
_LIVE_HEAL_POLICY = HealthPolicy(
    heartbeat_wedge_threshold=0.25,
    suspect_after=2,
    fail_after=3,
    cooldown=1.0,
)
_LIVE_HEAL_PROBE_INTERVAL = 0.05

#: Telemetry cadence of the heal runs (timeline seconds per window):
#: denser than the production default so the windows around a wedge and
#: its replacement resolve the incident, not just bracket it.
_HEAL_COLLECTOR_WINDOW = 0.05


@dataclass
class HealResult:
    """Outcome of one seeded self-healing run (plus its twin check).

    The contract is the chaos one — loss-free, byte-identical to the
    fixed-shard twin — **plus** the healing clauses: every wedged worker
    was detected and replaced by the :class:`FailureDetector` alone
    (the harness never calls ``replace_worker``), every detection landed
    within :attr:`detection_budget` seconds of the wedge, and nothing
    *else* was replaced (a clock skew or a load spike must never cost a
    worker — that is what the hysteresis is for).
    """

    name: str
    seed: int
    #: ``simulated`` | ``live``
    runtime_kind: str
    rounds: int
    clients: int
    completed: int
    events: List[ChaosEvent] = field(default_factory=list)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    #: Faults injected, by kind.
    wedges: int = 0
    skews: int = 0
    loss_windows: int = 0
    garbage_sent: int = 0
    datagrams_dropped: int = 0
    #: Actions the controller executed, by kind.
    quarantines: int = 0
    releases: int = 0
    replaces: int = 0
    #: Seconds from each wedge to its detector-driven replace decision
    #: (virtual on the simulation, wall on the live runtime).
    detection_seconds: List[float] = field(default_factory=list)
    #: The probe budget every detection must land within.
    detection_budget: float = 0.0
    #: The detector's conserved counter row (``probes == sum(probe
    #: counts) + retired_probes`` — checked by the tier-1 soak).
    detector_counters: Dict[str, int] = field(default_factory=dict)
    abandoned_sessions: int = 0
    unrouted: int = 0
    worker_errors: int = 0
    #: Exceptions the live control thread swallowed (always 0 simulated).
    controller_errors: int = 0
    final_workers: int = 0
    outputs_match_twin: bool = False
    error: Optional[str] = None
    #: Telemetry windows the run's collector closed (PR 9 pipeline).
    telemetry_windows: int = 0
    #: Structured events the run's journal recorded (faults, scale
    #: events, health actions, session-loss incidents).
    journal_events: int = 0
    #: Postmortem bundles the flight recorder captured — one per
    #: detector quarantine/replace.  Simulated bundles are deterministic
    #: (byte-stable per seed); the CLI persists them as
    #: ``POSTMORTEM_*.json``.
    postmortems: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Loss-free AND self-healing, as one boolean."""
        return (
            self.error is None
            and self.completed == self.clients
            and self.abandoned_sessions == 0
            and self.unrouted == 0
            and self.worker_errors == 0
            and self.controller_errors == 0
            and self.outputs_match_twin
            # Every wedge healed, nothing else replaced: exactly one
            # detector-driven replacement per wedged worker.
            and self.replaces == self.wedges
            and len(self.detection_seconds) == self.wedges
            and all(d <= self.detection_budget for d in self.detection_seconds)
        )

    def repro_command(self) -> str:
        """The exact shell line that replays this run's schedule."""
        command = (
            "PYTHONPATH=src python -m repro.evaluation --table heal "
            f"--seed {self.seed}"
        )
        if self.runtime_kind.startswith("live"):
            command += " --chaos-live"
        if self.runtime_kind == "live-aio":
            command += " --live-runtime aio"
        return command

    def failure_reason(self) -> Optional[str]:
        """Why :attr:`ok` is false (``None`` on a clean run)."""
        if self.error is not None:
            return f"harness exception: {self.error}"
        if self.completed != self.clients:
            return f"{self.clients - self.completed} of {self.clients} lookups unanswered"
        if self.abandoned_sessions:
            return f"{self.abandoned_sessions} sessions abandoned (evicted)"
        if self.unrouted:
            return f"{self.unrouted} datagrams unrouted"
        if self.worker_errors:
            return f"{self.worker_errors} worker-loop exceptions"
        if self.controller_errors:
            return f"{self.controller_errors} health-controller exceptions"
        if not self.outputs_match_twin:
            return "client bytes differ from the fixed-shard twin"
        if self.replaces < self.wedges or len(self.detection_seconds) < self.wedges:
            return (
                f"{self.wedges - len(self.detection_seconds)} wedged worker(s) "
                "never replaced by the detector"
            )
        if self.replaces > self.wedges:
            return (
                f"{self.replaces - self.wedges} spurious replacement(s) — "
                "hysteresis failed to absorb a transient"
            )
        late = [d for d in self.detection_seconds if d > self.detection_budget]
        if late:
            return (
                f"detection took {max(late):.3f}s "
                f"(budget {self.detection_budget:.3f}s)"
            )
        return None

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seed": self.seed,
            "runtime": self.runtime_kind,
            "rounds": self.rounds,
            "clients": self.clients,
            "completed": self.completed,
            "wedges": self.wedges,
            "skews": self.skews,
            "loss_windows": self.loss_windows,
            "garbage_sent": self.garbage_sent,
            "datagrams_dropped": self.datagrams_dropped,
            "quarantines": self.quarantines,
            "releases": self.releases,
            "replaces": self.replaces,
            "detection_seconds": [round(d, 6) for d in self.detection_seconds],
            "detection_budget": self.detection_budget,
            "detector": dict(self.detector_counters),
            "abandoned": self.abandoned_sessions,
            "unrouted": self.unrouted,
            "worker_errors": self.worker_errors,
            "controller_errors": self.controller_errors,
            "final_workers": self.final_workers,
            "outputs_match_twin": self.outputs_match_twin,
            "error": self.error,
            "ok": self.ok,
            "telemetry_windows": self.telemetry_windows,
            "journal_events": self.journal_events,
            "postmortems": len(self.postmortems),
            "events": [event.as_row() for event in self.events],
        }


def _harvest_controller(result: HealResult, controller: HealthController) -> None:
    """Fold the controller's audit log into the result row."""
    result.quarantines = sum(
        1 for a in controller.actions if a.kind == "quarantine"
    )
    result.releases = sum(1 for a in controller.actions if a.kind == "release")
    result.replaces = len(controller.replaced_ids)
    result.detector_counters = controller.detector.counters()


def _harvest_telemetry(
    result: HealResult,
    runtime,
    collector: MetricsCollector,
    journal: EventJournal,
    flight: FlightRecorder,
) -> None:
    """Fold the run's telemetry pipeline into the result row.

    Session-loss incidents land on the journal timeline first (a green
    run records none — ``evicted_sessions`` must be empty), then the
    counters and the captured postmortem bundles are carried over.  A
    run whose detector never acted still gets one on-demand bundle, so
    every heal row has a postmortem to persist.
    """
    for record in runtime.evicted_sessions:
        journal.append(
            "session-loss", at=record.finished_at, key=str(record.session_key)
        )
    if not flight.bundles:
        flight.capture("run-complete")
    result.telemetry_windows = collector.samples
    result.journal_events = journal.appended
    result.postmortems = list(flight.bundles)


def run_heal_simulated(
    case: int = 2,
    seed: int = 5,
    rounds: int = 3,
    clients_per_round: int = 4,
    start_workers: int = 2,
    twin_workers: int = 2,
    wave_timeout: float = 40.0,
    detection_budget: float = 1.0,
) -> HealResult:
    """One seeded self-healing run on the simulated runtime.

    Round 0 always wedges a worker mid-wave (the acceptance scenario:
    detection and replacement must be driven solely by the
    :class:`HealthController` started below — the harness never touches
    ``replace_worker``); later rounds draw wedge / skew / loss / hold
    from the seeded rng.  A wedge round's settle predicate additionally
    waits for the controller to have replaced the victim, and the time
    from wedge to the replace *decision* is checked against
    ``detection_budget`` (virtual seconds).  Skews stay below the
    ``fail_after`` hysteresis, so a run in which a skew costs a worker
    fails the ``replaces == wedges`` clause.
    """
    rng = random.Random(seed)
    total = rounds * clients_per_round
    # Full span sampling: the postmortem bundles below must carry
    # complete span trees (tracing never changes outputs or the virtual
    # timeline, so the twin comparison and detector decisions are
    # unaffected).
    network, runtime, clients, target = _deploy_simulated(
        case, seed, total, start_workers, live_topology=False,
        trace_sample=1.0,
    )
    # The telemetry pipeline rides along: windowed time-series on the
    # virtual timer wheel, a structured journal on the virtual clock,
    # and a *deterministic* flight recorder — every wall-clock-derived
    # field is stripped from its bundles, so one seed dumps byte-stable
    # postmortems.
    collector = MetricsCollector(runtime, window=_HEAL_COLLECTOR_WINDOW)
    journal = EventJournal(clock=network.now)
    flight = FlightRecorder(
        collector=collector,
        journal=journal,
        tracer=runtime.tracer,
        deterministic=True,
    )
    runtime.journal = journal
    collector.start(network)
    controller = HealthController(
        runtime,
        FailureDetector(_SIM_HEAL_POLICY),
        interval=_SIM_HEAL_PROBE_INTERVAL,
        collector=collector,
        journal=journal,
        flight_recorder=flight,
    )
    controller.start(network)

    result = HealResult(
        name=f"heal-case-{case}-seed-{seed}",
        seed=seed,
        runtime_kind="simulated",
        rounds=rounds,
        clients=total,
        completed=0,
        detection_budget=detection_budget,
    )
    injector = Endpoint("heal-injector.local", 9998, Transport.UDP)
    started: List[Tuple[object, object]] = []
    dropped_before = network.dropped

    for round_index in range(rounds):
        wave = clients[
            round_index * clients_per_round : (round_index + 1) * clients_per_round
        ]
        wave_started = [
            (client, client.start_lookup(network, target)) for client in wave
        ]
        started.extend(wave_started)
        network.run_for(0.004)
        kind = "wedge" if round_index == 0 else rng.choice(_HEAL_FAULT_KINDS)
        victim: Optional[int] = None
        wedge_at = 0.0
        if kind == "wedge":
            victim = rng.choice(list(runtime.worker_ids))
            duration = rng.uniform(0.5, 0.9)
            wedge_at = network.now()
            wedge_simulated_worker(runtime, network, victim, duration)
            result.wedges += 1
            journal.append(
                "fault",
                at=wedge_at,
                fault="wedge",
                worker_id=victim,
                seconds=round(duration, 6),
            )
            result.events.append(
                ChaosEvent(
                    round_index, "wedge", f"worker {victim} for {duration:.2f}s"
                )
            )
        elif kind == "skew":
            skewed = rng.choice(list(runtime.worker_ids))
            controller.skew_probes(
                skewed, _SIM_HEAL_POLICY.heartbeat_wedge_threshold, probes=3
            )
            result.skews += 1
            journal.append(
                "fault", at=network.now(), fault="skew", worker_id=skewed, probes=3
            )
            result.events.append(
                ChaosEvent(round_index, "skew", f"worker {skewed} x3 pulses")
            )
        elif kind == "hold":
            result.events.append(ChaosEvent(round_index, "hold"))
        result.garbage_sent += _send_garbage(network, runtime, injector)
        result.events.append(ChaosEvent(round_index, "garbage"))
        wave_settled = network.run_until(
            lambda: all(
                client.lookup_result(key) is not None
                for client, key in wave_started
            )
            and not runtime.scaling_in_progress
            and (victim is None or victim in controller.replaced_ids),
            timeout=wave_timeout,
        )
        if victim is not None:
            decisions = [
                a
                for a in controller.actions
                if a.kind == "replace"
                and a.worker_id == victim
                and a.at >= wedge_at
            ]
            if decisions:
                result.detection_seconds.append(decisions[0].at - wedge_at)
            result.events.append(
                ChaosEvent(
                    round_index,
                    "replace",
                    f"worker {victim} healed"
                    if decisions
                    else f"worker {victim} NOT healed",
                )
            )
        network.run_for(3 * runtime.drain_poll_interval)
        if kind == "loss" and wave_settled:
            loss = rng.uniform(0.5, 1.0)
            network.loss_rate = loss
            journal.append(
                "fault", at=network.now(), fault="loss", rate=round(loss, 6)
            )
            result.garbage_sent += _send_garbage(network, runtime, injector)
            network.run_for(0.05)
            network.loss_rate = 0.0
            result.loss_windows += 1
            result.events.append(
                ChaosEvent(round_index, "loss", f"rate={loss:.2f}")
            )

    network.run_until(
        lambda: all(client.lookup_result(key) is not None for client, key in started)
        and not runtime.scaling_in_progress,
        timeout=wave_timeout,
    )
    controller.stop()
    collector.stop()
    result.completed = sum(
        1
        for client, key in started
        if (found := client.lookup_result(key)) is not None and found.found
    )
    result.datagrams_dropped = network.dropped - dropped_before
    result.abandoned_sessions = len(runtime.evicted_sessions)
    result.unrouted = runtime.unrouted_datagrams
    result.final_workers = runtime.worker_count
    result.scale_events = list(runtime.scale_events)
    _harvest_controller(result, controller)
    _harvest_telemetry(result, runtime, collector, journal, flight)
    heal_bytes = _collect_bytes(clients)

    result.outputs_match_twin = heal_bytes == _twin_bytes(
        case, seed, total, twin_workers, wave_timeout, live_topology=False
    )
    return result


def run_heal_live(
    case: int = 2,
    seed: int = 5,
    rounds: int = 2,
    clients_per_round: int = 4,
    start_workers: int = 2,
    twin_workers: int = 2,
    wave_timeout: float = 20.0,
    detection_budget: float = 2.0,
    runtime: str = "thread",
) -> HealResult:
    """One seeded self-healing run on the **live** runtime.

    The network itself is the fault injector: a
    :class:`~repro.network.sockets.FaultyNetwork` whose seeded loss
    windows drop / duplicate / reorder real UDP datagrams.  Round 0
    wedges a worker loop mid-wave (a stalling job posted to its queue)
    and polls until the :class:`LiveHealthController`'s thread replaces
    it; the last round opens a loss window over a garbage burst — only
    after its wave settled, so loss can only eat garbage and the
    zero-drop contract stays meaningful.  Detection times are wall-clock
    (``SocketNetwork.now()``, the same monotonic clock the worker loops
    stamp their heartbeats with).

    ``runtime`` picks the live substrate: ``"thread"`` runs the
    thread-per-worker runtime on :class:`FaultyNetwork`; ``"aio"`` runs
    the event-loop runtime on
    :class:`~repro.network.aio.AsyncFaultyNetwork` — same seeded fault
    plan, same heal choreography, the wedge being an awaited
    ``asyncio.sleep`` so only the victim's queue stalls.
    """
    import time as _time

    from ..network.sockets import FaultyNetwork

    rng = random.Random(seed)
    total = rounds * clients_per_round
    clients, service, target = _case_parts(case, total, live=True)
    if runtime == "thread":
        network = FaultyNetwork(seed=seed)
        runtime_class = LiveShardedRuntime
        kind = "live"
    elif runtime == "aio":
        from ..network.aio import AsyncFaultyNetwork
        from ..runtime.aio_live import AsyncLiveShardedRuntime

        network = AsyncFaultyNetwork(seed=seed)
        runtime_class = AsyncLiveShardedRuntime
        kind = "live-aio"
    else:
        raise ConfigurationError(
            f"unknown live runtime {runtime!r}; use 'thread' or 'aio'"
        )
    runtime = runtime_class.from_bridge(
        _live_bridge(case, 0.0), workers=start_workers
    )
    # Live telemetry: a daemon collector thread and a wall-clock journal.
    # Bundles here are *not* deterministic (real time, real scheduling) —
    # only the simulated runs promise byte-stable postmortems.
    collector = LiveMetricsCollector(runtime, window=_HEAL_COLLECTOR_WINDOW)
    journal = EventJournal(clock=network.now)
    flight = FlightRecorder(
        collector=collector, journal=journal, tracer=runtime.tracer
    )
    runtime.journal = journal
    controller = LiveHealthController(
        runtime,
        FailureDetector(_LIVE_HEAL_POLICY),
        interval=_LIVE_HEAL_PROBE_INTERVAL,
        collector=collector,
        journal=journal,
        flight_recorder=flight,
    )
    result = HealResult(
        name=f"heal-{kind}-case-{case}-seed-{seed}",
        seed=seed,
        runtime_kind=kind,
        rounds=rounds,
        clients=total,
        completed=0,
        detection_budget=detection_budget,
    )
    injector = Endpoint(_LIVE_HOST, 45998, Transport.UDP)
    started: List[Tuple[object, object]] = []

    def wave_done(pairs) -> bool:
        return all(client.lookup_result(key) is not None for client, key in pairs)

    def await_wave(pairs) -> None:
        deadline = _time.monotonic() + wave_timeout
        while _time.monotonic() < deadline and not wave_done(pairs):
            if runtime.worker_errors:
                return
            _time.sleep(0.002)

    try:
        runtime.deploy(network)
        network.attach(service)
        for client in clients:
            network.attach(client)
        collector.start()
        controller.start()
        for round_index in range(rounds):
            wave = clients[
                round_index * clients_per_round : (round_index + 1) * clients_per_round
            ]
            wave_started = [
                (client, client.start_lookup(network, target)) for client in wave
            ]
            started.extend(wave_started)
            if round_index == 0:
                # The acceptance wedge: stall one loop mid-wave, then
                # wait for the control thread — and only it — to notice
                # and replace the worker.
                victim = rng.choice(list(runtime.worker_ids))
                duration = 0.8
                wedge_at = _time.monotonic()
                wedge_live_worker(runtime, victim, duration)
                result.wedges += 1
                journal.append(
                    "fault",
                    at=wedge_at,
                    fault="wedge",
                    worker_id=victim,
                    seconds=round(duration, 6),
                )
                result.events.append(
                    ChaosEvent(
                        round_index, "wedge", f"worker {victim} for {duration:.2f}s"
                    )
                )
                result.garbage_sent += _send_garbage(network, runtime, injector)
                result.events.append(ChaosEvent(round_index, "garbage"))
                heal_deadline = _time.monotonic() + wave_timeout
                while (
                    _time.monotonic() < heal_deadline
                    and victim not in controller.replaced_ids
                ):
                    if runtime.worker_errors or controller.errors:
                        break
                    _time.sleep(0.01)
                decisions = [
                    a
                    for a in controller.actions
                    if a.kind == "replace"
                    and a.worker_id == victim
                    and a.at >= wedge_at
                ]
                if decisions:
                    result.detection_seconds.append(decisions[0].at - wedge_at)
                result.events.append(
                    ChaosEvent(
                        round_index,
                        "replace",
                        f"worker {victim} healed"
                        if decisions
                        else f"worker {victim} NOT healed",
                    )
                )
                await_wave(wave_started)
            else:
                result.garbage_sent += _send_garbage(network, runtime, injector)
                result.events.append(ChaosEvent(round_index, "garbage"))
                await_wave(wave_started)
                # The wave settled: a loss window now can only eat the
                # garbage burst below (plus its duplicates/reorders).
                plan = network.open_loss_window()
                journal.append(
                    "fault", at=network.now(), fault="loss", window=plan.window
                )
                result.garbage_sent += _send_garbage(network, runtime, injector)
                _time.sleep(0.05)
                network.close_loss_window()
                result.loss_windows += 1
                result.events.append(
                    ChaosEvent(
                        round_index,
                        "loss",
                        f"window {plan.window}: {len(plan.decisions)} verdicts, "
                        f"{network.udp_dropped} dropped",
                    )
                )
        await_wave(started)
        result.completed = sum(
            1
            for client, key in started
            if (found := client.lookup_result(key)) is not None and found.found
        )
        result.datagrams_dropped = network.udp_dropped
        result.abandoned_sessions = len(runtime.evicted_sessions)
        result.unrouted = runtime.unrouted_datagrams
        result.worker_errors = len(runtime.worker_errors)
        result.final_workers = runtime.worker_count
        result.scale_events = list(runtime.scale_events)
        heal_bytes = _collect_bytes(clients)
        # Stop the collector while the deployment is still up: a collect
        # racing ``undeploy`` would record a spurious error.
        collector.stop()
        _harvest_telemetry(result, runtime, collector, journal, flight)
    finally:
        collector.stop()
        controller.stop()
        runtime.undeploy()
        network.close()

    result.controller_errors = len(controller.errors) + len(collector.errors)
    _harvest_controller(result, controller)
    result.outputs_match_twin = heal_bytes == _twin_bytes(
        case, seed, total, twin_workers, wave_timeout, live_topology=True
    )
    return result


def run_heal(
    case: int = 2,
    seeds: Sequence[int] = DEFAULT_HEAL_SEEDS,
    include_live: bool = False,
    raise_on_failure: bool = True,
    live_runtime: str = "thread",
    **options,
) -> List[HealResult]:
    """The self-healing sweep: one simulated run per seed (plus one live).

    Mirrors :func:`run_chaos`: with ``raise_on_failure`` a red run raises
    ``RuntimeError`` naming its seed and repro command; a run that
    *crashes* is folded into a failed row carrying its seed; only
    pre-flight configuration mistakes raise directly.  ``live_runtime``
    picks the substrate of the live run — ``"thread"``, ``"aio"``, or
    ``"both"`` for one live row per substrate.
    """
    if live_runtime not in ("thread", "aio", "both"):
        raise ConfigurationError(
            f"unknown live runtime {live_runtime!r}; use 'thread', 'aio' "
            "or 'both'"
        )
    if not seeds:
        raise ConfigurationError(
            "a heal sweep needs at least one seed — an empty sweep would "
            "report 'all wedges healed' having injected nothing"
        )
    _check_options(case, options)
    for key in ("wave_timeout", "detection_budget"):
        value = options.get(key)
        if value is not None and (
            not isinstance(value, (int, float)) or value <= 0
        ):
            raise ConfigurationError(
                f"heal option {key!r} must be a positive number, got {value!r}"
            )

    def _guarded(runner, kind: str, seed: int, **runner_options) -> HealResult:
        try:
            return runner(case=case, seed=seed, **runner_options)
        except Exception as exc:  # noqa: BLE001 - every seed must report
            prefix = f"heal-{kind}" if kind.startswith("live") else "heal"
            return HealResult(
                name=f"{prefix}-case-{case}-seed-{seed}",
                seed=seed,
                runtime_kind=kind,
                rounds=0,
                clients=0,
                completed=0,
                error=f"{type(exc).__name__}: {exc}",
            )

    results = [
        _guarded(run_heal_simulated, "simulated", seed, **options)
        for seed in seeds
    ]
    if include_live:
        flavours = (
            ("thread", "aio") if live_runtime == "both" else (live_runtime,)
        )
        for flavour in flavours:
            kind = "live" if flavour == "thread" else "live-aio"
            results.append(
                _guarded(
                    run_heal_live, kind, seeds[0], runtime=flavour, **options
                )
            )
    failures = [result for result in results if not result.ok]
    if failures and raise_on_failure:
        first = failures[0]
        raise RuntimeError(
            f"heal run {first.name} (seed {first.seed}, {first.runtime_kind}) "
            f"failed: {first.failure_reason()} — reproduce with "
            f"`{first.repro_command()}`"
        )
    return results

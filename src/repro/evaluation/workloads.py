"""Workload construction for the evaluation scenarios.

A *scenario* wires legacy endpoints (and, for the bridged cases, a deployed
Starlink bridge) onto a fresh simulated network and exposes a uniform
``lookup()`` driver, so the harness can run the same repetition loop for
every row of Fig. 12.

The service identifiers used throughout are the three spellings of the same
test service, one per discovery vocabulary:

* SLP:     ``service:test``
* UPnP:    ``urn:schemas-upnp-org:service:test:1``
* Bonjour: ``_test._tcp.local``
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..bridges.specs import BRIDGE_BUILDERS, CASE_NAMES
from ..core.engine.bridge import StarlinkBridge
from ..network.latency import CalibratedLatencies, LatencyModel, default_latencies
from ..network.simulated import SimulatedNetwork
from ..network.sockets import SocketNetwork
from ..obs.tracing import Tracer
from ..protocols.common import LookupResult
from ..protocols.mdns import BonjourBrowser, BonjourResponder
from ..protocols.slp import SLPServiceAgent, SLPUserAgent
from ..protocols.upnp import UPnPControlPoint, UPnPDevice
from ..runtime import (
    Autoscaler,
    AutoscaleDecision,
    AutoscalerPolicy,
    ElasticController,
    LiveShardedRuntime,
    ScaleEvent,
    ShardedRuntime,
    ShardMetrics,
)

__all__ = [
    "SLP_SERVICE_TYPE",
    "UPNP_SERVICE_TYPE",
    "BONJOUR_SERVICE_NAME",
    "Scenario",
    "ConcurrentScenario",
    "ConcurrentResult",
    "LiveScenario",
    "ElasticPhase",
    "ElasticPhaseStats",
    "ElasticResult",
    "ElasticScenario",
    "legacy_scenario",
    "bridged_scenario",
    "concurrent_scenario",
    "sharded_scenario",
    "live_sharded_scenario",
    "live_twin_scenario",
    "elastic_scenario",
    "LEGACY_PROTOCOLS",
    "LIVE_BRIDGE_PORT",
    "LIVE_SERVICE_PORT",
    "LIVE_CLIENT_PORT_BASE",
]

SLP_SERVICE_TYPE = "service:test"
UPNP_SERVICE_TYPE = "urn:schemas-upnp-org:service:test:1"
BONJOUR_SERVICE_NAME = "_test._tcp.local"

#: Legacy protocol names in the order of Fig. 12(a).
LEGACY_PROTOCOLS = ["SLP", "Bonjour", "UPnP"]


@dataclass
class Scenario:
    """A ready-to-run evaluation scenario."""

    name: str
    network: SimulatedNetwork
    lookup: Callable[[], LookupResult]
    bridge: Optional[StarlinkBridge] = None
    description: str = ""

    def run(self, repetitions: int) -> List[LookupResult]:
        """Perform ``repetitions`` lookups back to back."""
        return [self.lookup() for _ in range(repetitions)]


def _make_client_and_service(
    client_protocol: str, service_protocol: str, latencies: CalibratedLatencies
):
    """Instantiate the legacy endpoints for a (client, service) protocol pair."""
    if service_protocol == "SLP":
        service = SLPServiceAgent(latency=latencies.slp_service)
    elif service_protocol == "Bonjour":
        service = BonjourResponder(latency=latencies.mdns_service)
    elif service_protocol == "UPnP":
        service = UPnPDevice(
            ssdp_latency=latencies.ssdp_service, http_latency=latencies.http_service
        )
    else:
        raise ValueError(f"unknown service protocol {service_protocol!r}")

    if client_protocol == "SLP":
        client = SLPUserAgent(client_overhead=latencies.slp_client_overhead)
        target = SLP_SERVICE_TYPE
    elif client_protocol == "Bonjour":
        client = BonjourBrowser(client_overhead=latencies.mdns_client_overhead)
        target = BONJOUR_SERVICE_NAME
    elif client_protocol == "UPnP":
        client = UPnPControlPoint(client_overhead=latencies.upnp_client_overhead)
        target = UPNP_SERVICE_TYPE
    else:
        raise ValueError(f"unknown client protocol {client_protocol!r}")
    return client, service, target


def legacy_scenario(
    protocol: str,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
) -> Scenario:
    """A legacy client looking up a legacy service of the *same* protocol.

    These are the baseline measurements of Fig. 12(a).
    """
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)
    client, service, target = _make_client_and_service(protocol, protocol, latencies)
    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"legacy-{protocol.lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        description=f"Legacy {protocol} lookup answered by a legacy {protocol} service",
    )


def bridged_scenario(
    case: int,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
) -> Scenario:
    """One of the six Starlink connector cases of Fig. 12(b).

    The scenario contains the legacy client of the case's *source* protocol,
    the legacy service of its *target* protocol, and the Starlink bridge for
    that pair deployed in between.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    client, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.deploy(network)

    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"case-{case}-{CASE_NAMES[case].replace(' ', '-').lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        bridge=bridge,
        description=(
            f"Case {case}: legacy {client_protocol} client answered by a legacy "
            f"{service_protocol} service through the Starlink bridge"
        ),
    )


# ----------------------------------------------------------------------
# concurrent clients: many overlapping sessions through one bridge
# ----------------------------------------------------------------------
@dataclass
class ConcurrentResult:
    """Outcome of one concurrent-clients run."""

    name: str
    clients: int
    #: Per-client lookup results, in client order (``found=False`` entries
    #: are clients whose reply never arrived).
    results: List[LookupResult]
    #: Virtual seconds from the first request sent to the last reply received.
    makespan: float
    #: Translation time of every completed bridge session (seconds).
    translation_times: List[float]
    #: Engine drop counters after the run (both 0 on a clean run).
    unrouted_datagrams: int = 0
    ignored_datagrams: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def all_found(self) -> bool:
        return self.completed == self.clients

    @property
    def throughput(self) -> float:
        """Completed sessions per virtual second of makespan."""
        if self.makespan <= 0.0:
            return 0.0
        return self.completed / self.makespan


@dataclass
class ConcurrentScenario:
    """N legacy clients with overlapping lookups through one runtime.

    The clients fire their requests ``spacing`` virtual seconds apart —
    far less than a service round trip — so the bridge holds many sessions
    in flight simultaneously.  Clients use the non-blocking
    ``start_lookup``/``lookup_result`` API and match replies by their
    transaction identifier (or, for the two-leg UPnP control point, by
    completing the SSDP+HTTP dialog), which is how correct per-client
    attribution is verified end to end.

    ``bridge`` is any deployment exposing ``sessions`` /
    ``unrouted_datagrams`` / ``ignored_datagrams`` — a single-engine
    :class:`StarlinkBridge` or a multi-worker
    :class:`~repro.runtime.runtime.ShardedRuntime`.
    """

    name: str
    network: SimulatedNetwork
    bridge: object
    clients: List
    target: str
    spacing: float
    description: str = ""

    def run(self, timeout: float = 30.0) -> ConcurrentResult:
        network = self.network
        started: List = []
        for index, client in enumerate(self.clients):

            def start(client=client) -> None:
                started.append((client, client.start_lookup(network, self.target)))

            network.call_later(index * self.spacing, start)

        expected = len(self.clients)

        def all_answered() -> bool:
            if len(started) < expected:
                return False
            return all(client.lookup_result(key) is not None for client, key in started)

        first_send = network.now()
        network.run_until(
            all_answered, timeout=timeout + expected * self.spacing
        )
        return _collect_concurrent_result(
            self.name, self.bridge, started, first_send, expected
        )


def _collect_concurrent_result(
    name: str, bridge, started, first_send: float, expected: int
) -> ConcurrentResult:
    """Harvest the per-client results after a concurrent run.

    Makespan comes from the reply timestamps themselves (virtual on the
    simulation, wall on sockets), so idle time after the last reply —
    simulation quiescence or live polling slack — does not inflate it.
    """
    results: List[LookupResult] = []
    reply_times: List[float] = []
    for client, key in started:
        result = client.lookup_result(key)
        if result is None:
            results.append(LookupResult(found=False))
            continue
        results.append(result)
        reply_times.append(client.lookup_started_at(key) + result.response_time)
    makespan = (max(reply_times) - first_send) if reply_times else 0.0

    return ConcurrentResult(
        name=name,
        clients=expected,
        results=results,
        makespan=makespan,
        translation_times=[record.translation_time for record in bridge.sessions],
        unrouted_datagrams=bridge.unrouted_datagrams,
        ignored_datagrams=bridge.ignored_datagrams,
    )


def _make_concurrent_clients(
    client_protocol: str,
    count: int,
    host: Optional[str] = None,
    port_base: Optional[int] = None,
    client_overhead: Optional[LatencyModel] = None,
):
    """N distinct legacy clients of ``client_protocol`` with unique endpoints.

    Transaction identifiers are pinned per client index, so two runs of the
    same workload — regardless of shard count or network engine — translate
    byte-identical outputs (the sharding benchmarks assert exactly that).
    ``host``/``port_base`` relocate the clients for the socket engine,
    where every node shares the loopback address and only ports differ.
    """
    clients = []
    for index in range(count):
        kwargs: Dict[str, object] = {}
        if client_overhead is not None:
            kwargs["client_overhead"] = client_overhead
        if client_protocol == "SLP":
            clients.append(
                SLPUserAgent(
                    host=host or f"slp-client-{index}.local",
                    port=(port_base or 5100) + index,
                    name=f"slp-client-{index}",
                    xid_start=1000 + index * 16,
                    **kwargs,
                )
            )
        elif client_protocol == "Bonjour":
            clients.append(
                BonjourBrowser(
                    host=host or f"bonjour-client-{index}.local",
                    port=(port_base or 5200) + index,
                    name=f"bonjour-client-{index}",
                    query_id_start=2000 + index * 16,
                    **kwargs,
                )
            )
        elif client_protocol == "UPnP":
            clients.append(
                UPnPControlPoint(
                    host=host or f"upnp-client-{index}.local",
                    port=(port_base or 5300) + index,
                    name=f"upnp-client-{index}",
                    **kwargs,
                )
            )
        else:
            raise ValueError(f"unknown client protocol {client_protocol!r}")
    return clients


def concurrent_scenario(
    case: int,
    clients: int = 10,
    spacing: float = 0.002,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
    tracer: Optional[Tracer] = None,
) -> ConcurrentScenario:
    """``clients`` overlapping legacy lookups through the bridge of ``case``.

    All six cases are supported: SLP and Bonjour clients fire one
    non-blocking datagram each, and the two-leg UPnP control point (cases
    3/4) drives its SSDP+HTTP dialog reactively via ``start_control``.
    ``spacing`` staggers the requests — keep it well below the service
    latency so the sessions genuinely interleave.  ``tracer`` attaches a
    :mod:`repro.obs` tracer to the single-engine bridge (the latency table
    uses this to attribute engine stages without a router in the path).
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )
    concurrent_clients = _make_concurrent_clients(client_protocol, clients)

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    if tracer is not None:
        bridge.tracer = tracer
    bridge.deploy(network)

    network.attach(service)
    for client in concurrent_clients:
        network.attach(client)

    return ConcurrentScenario(
        name=f"case-{case}-x{clients}",
        network=network,
        bridge=bridge,
        clients=concurrent_clients,
        target=target,
        spacing=spacing,
        description=(
            f"{clients} overlapping legacy {client_protocol} lookups answered by a "
            f"legacy {service_protocol} service through one Starlink bridge"
        ),
    )


# ----------------------------------------------------------------------
# sharded runtime: N clients across W parallel worker engines
# ----------------------------------------------------------------------
def sharded_scenario(
    case: int,
    clients: int = 100,
    workers: int = 4,
    spacing: float = 0.002,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
    serialize_processing: bool = True,
    routing_delay: float = 0.0,
    trace_sample: Optional[float] = None,
) -> ConcurrentScenario:
    """``clients`` overlapping lookups through a ``workers``-shard runtime.

    Same clients and legacy service as :func:`concurrent_scenario`, but the
    bridge is deployed as a :class:`~repro.runtime.runtime.ShardedRuntime`:
    a shard router owns the public endpoints and partitions the sessions
    across ``workers`` engines.  Workers model their translation compute as
    a serial resource (``serialize_processing``), so the sweep over worker
    counts measures genuine parallel capacity — run with ``workers=1`` for
    the like-for-like single-shard baseline.  ``routing_delay`` charges the
    router's classify-and-place cost on the virtual clock too (serial, one
    busy-until clock for the whole edge), which is how a sweep exhibits
    *router* saturation: with it set high enough, adding workers stops
    helping because the edge, not the pool, is the bottleneck.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )
    concurrent_clients = _make_concurrent_clients(client_protocol, clients)

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.validate()
    overrides: Dict[str, object] = {}
    if trace_sample is not None:
        overrides["trace_sample"] = trace_sample
    runtime = ShardedRuntime.from_bridge(
        bridge,
        workers=workers,
        serialize_processing=serialize_processing,
        routing_delay=routing_delay,
        **overrides,
    )
    runtime.deploy(network)

    network.attach(service)
    for client in concurrent_clients:
        network.attach(client)

    return ConcurrentScenario(
        name=f"case-{case}-x{clients}-w{workers}",
        network=network,
        bridge=runtime,
        clients=concurrent_clients,
        target=target,
        spacing=spacing,
        description=(
            f"{clients} overlapping legacy {client_protocol} lookups through a "
            f"{workers}-shard Starlink runtime answering from a legacy "
            f"{service_protocol} service"
        ),
    )


# ----------------------------------------------------------------------
# live sharded runtime: the same workload over real loopback sockets
# ----------------------------------------------------------------------
#: Fixed loopback port layout of the live workload.  The ports are part of
#: the topology: the simulated twin uses the same numbers, so translated
#: bytes that embed a bridge or service endpoint are identical in both.
LIVE_BRIDGE_PORT = 41700
LIVE_SERVICE_PORT = 42700
LIVE_CLIENT_PORT_BASE = 42750

#: Wall-clock seconds of translation compute charged per translated send in
#: the live workload (the serial resource each worker parallelises).
LIVE_PROCESSING_DELAY = 0.005

_LIVE_HOST = "127.0.0.1"
_NO_LATENCY = LatencyModel(0.0, 0.0)
_LIVE_SERVICE_LATENCY = LatencyModel(0.001, 0.001)


def _fast_calibration() -> CalibratedLatencies:
    """Sub-millisecond calibration for the simulated twin of a live run."""
    quick = LatencyModel(0.001, 0.001)
    return CalibratedLatencies(
        link=LatencyModel(0.0001, 0.0001),
        slp_service=quick,
        mdns_service=quick,
        ssdp_service=quick,
        http_service=quick,
        slp_client_overhead=_NO_LATENCY,
        mdns_client_overhead=_NO_LATENCY,
        upnp_client_overhead=_NO_LATENCY,
        bridge_processing=_NO_LATENCY,
    )


def _live_service(service_protocol: str):
    """The legacy service of a live topology, pinned to the loopback layout."""
    if service_protocol == "SLP":
        return SLPServiceAgent(
            host=_LIVE_HOST, port=LIVE_SERVICE_PORT, latency=_LIVE_SERVICE_LATENCY
        )
    if service_protocol == "Bonjour":
        return BonjourResponder(
            host=_LIVE_HOST, port=LIVE_SERVICE_PORT, latency=_LIVE_SERVICE_LATENCY
        )
    if service_protocol == "UPnP":
        return UPnPDevice(
            host=_LIVE_HOST,
            ssdp_port=LIVE_SERVICE_PORT,
            http_port=LIVE_SERVICE_PORT + 1,
            ssdp_latency=_LIVE_SERVICE_LATENCY,
            http_latency=_LIVE_SERVICE_LATENCY,
        )
    raise ValueError(f"unknown service protocol {service_protocol!r}")


@dataclass
class LiveScenario:
    """N legacy clients through a live sharded runtime on real sockets.

    The socket-engine sibling of :class:`ConcurrentScenario`: the same
    clients, the same non-blocking lookup driver, but the network is a
    :class:`~repro.network.sockets.SocketNetwork` and time is the wall
    clock — :meth:`run` polls for completion instead of advancing a
    simulation.  ``run`` also tears the deployment down (sockets and worker
    threads are real resources), so a scenario runs **once**.
    """

    name: str
    #: A :class:`SocketNetwork` or :class:`~repro.network.aio.AsyncSocketNetwork`.
    network: SocketNetwork
    #: A :class:`LiveShardedRuntime` or
    #: :class:`~repro.runtime.aio_live.AsyncLiveShardedRuntime`.
    runtime: LiveShardedRuntime
    clients: List
    target: str
    description: str = ""

    def run(self, timeout: float = 15.0) -> ConcurrentResult:
        network = self.network
        try:
            started = []
            first_send = network.now()
            for client in self.clients:
                started.append((client, client.start_lookup(network, self.target)))

            def all_answered() -> bool:
                return all(
                    client.lookup_result(key) is not None for client, key in started
                )

            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline and not all_answered():
                # A worker-loop exception means the missing replies will
                # never come; fail immediately instead of draining the
                # timeout.
                if self.runtime.worker_errors:
                    break
                time.sleep(0.002)
            if self.runtime.worker_errors:
                raise self.runtime.worker_errors[0]
            return _collect_concurrent_result(
                self.name, self.runtime, started, first_send, len(self.clients)
            )
        finally:
            self.runtime.undeploy()
            self.network.close()

    @property
    def raw_responses_by_client(self) -> Dict[str, Tuple[bytes, ...]]:
        """Raw translated bytes each client received (byte-identity checks)."""
        return {client.name: tuple(client.raw_responses) for client in self.clients}


def _live_case_parts(case: int, clients: int):
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    targets = {
        "SLP": SLP_SERVICE_TYPE,
        "Bonjour": BONJOUR_SERVICE_NAME,
        "UPnP": UPNP_SERVICE_TYPE,
    }
    concurrent_clients = _make_concurrent_clients(
        client_protocol,
        clients,
        host=_LIVE_HOST,
        port_base=LIVE_CLIENT_PORT_BASE,
        client_overhead=_NO_LATENCY,
    )
    service = _live_service(service_protocol)
    return concurrent_clients, service, targets[client_protocol], service_protocol


def _live_bridge(case: int, processing_delay: float) -> StarlinkBridge:
    bridge = BRIDGE_BUILDERS[case](
        host=_LIVE_HOST,
        base_port=LIVE_BRIDGE_PORT,
        processing_delay=processing_delay,
    )
    bridge.validate()
    return bridge


def _live_runtime_parts(runtime: str):
    """The (network factory, runtime class, name suffix) for a live flavour.

    ``"thread"`` is the thread-per-worker stack
    (:class:`SocketNetwork` + :class:`LiveShardedRuntime`); ``"aio"`` is
    the single-event-loop stack (:class:`~repro.network.aio.AsyncSocketNetwork`
    + :class:`~repro.runtime.aio_live.AsyncLiveShardedRuntime`).
    """
    if runtime == "thread":
        return SocketNetwork, LiveShardedRuntime, ""
    if runtime == "aio":
        from ..network.aio import AsyncSocketNetwork
        from ..runtime.aio_live import AsyncLiveShardedRuntime

        return AsyncSocketNetwork, AsyncLiveShardedRuntime, "-aio"
    raise ValueError(f"unknown live runtime {runtime!r}; use 'thread' or 'aio'")


def live_sharded_scenario(
    case: int,
    clients: int = 24,
    workers: int = 4,
    processing_delay: float = LIVE_PROCESSING_DELAY,
    trace_sample: Optional[float] = None,
    runtime: str = "thread",
) -> LiveScenario:
    """``clients`` real-socket lookups through a ``workers``-shard runtime.

    Deploys a :class:`~repro.runtime.live.LiveShardedRuntime` (router +
    thread-per-worker engines) — or, with ``runtime="aio"``, an
    :class:`~repro.runtime.aio_live.AsyncLiveShardedRuntime` (router +
    worker tasks on one event loop) — on a fresh socket engine, with the
    legacy service and N OS-socket clients of the case attached alongside.
    Throughput here is *real wall-clock* throughput: ``processing_delay``
    seconds of serialised translation compute per translated send is what
    the workers parallelise.
    """
    network_factory, runtime_class, suffix = _live_runtime_parts(runtime)
    network = network_factory()
    concurrent_clients, service, target, service_protocol = _live_case_parts(
        case, clients
    )
    overrides: Dict[str, object] = {}
    if trace_sample is not None:
        overrides["trace_sample"] = trace_sample
    live_runtime = runtime_class.from_bridge(
        _live_bridge(case, processing_delay), workers=workers, **overrides
    )
    try:
        live_runtime.deploy(network)
        network.attach(service)
        for client in concurrent_clients:
            network.attach(client)
    except Exception:
        live_runtime.undeploy()
        network.close()
        raise
    client_protocol, _, _ = CASE_NAMES[case].partition(" to ")
    return LiveScenario(
        name=f"live-case-{case}-x{clients}-w{workers}{suffix}",
        network=network,
        runtime=live_runtime,
        clients=concurrent_clients,
        target=target,
        description=(
            f"{clients} legacy {client_protocol} lookups over real loopback "
            f"sockets through a {workers}-shard live Starlink runtime "
            f"({runtime}) answering from a legacy {service_protocol} service"
        ),
    )


def live_twin_scenario(
    case: int,
    clients: int = 24,
    workers: int = 4,
    processing_delay: float = LIVE_PROCESSING_DELAY,
    seed: int = 7,
) -> ConcurrentScenario:
    """The simulated twin of :func:`live_sharded_scenario`.

    Identical topology — same loopback host, same port layout, same pinned
    client transaction identifiers, same shard count, ephemeral ports off —
    on the deterministic simulation.  Translated outputs must be
    byte-identical to the live run's; only timings differ.  The live
    benchmark and ``--table live-sharding`` assert that equality.
    """
    network = SimulatedNetwork(latencies=_fast_calibration(), seed=seed)
    concurrent_clients, service, target, service_protocol = _live_case_parts(
        case, clients
    )
    runtime = ShardedRuntime.from_bridge(
        _live_bridge(case, processing_delay),
        workers=workers,
        serialize_processing=True,
        ephemeral_ports=False,
        worker_port_stride=16,
    )
    runtime.deploy(network)
    network.attach(service)
    for client in concurrent_clients:
        network.attach(client)
    return ConcurrentScenario(
        name=f"live-twin-case-{case}-x{clients}-w{workers}",
        network=network,
        bridge=runtime,
        clients=concurrent_clients,
        target=target,
        spacing=0.0005,
        description=(
            f"Simulated twin of the live {workers}-shard case-{case} workload "
            f"(same loopback topology, virtual clock)"
        ),
    )


# ----------------------------------------------------------------------
# elastic control plane: bursty load through an autoscaled runtime
# ----------------------------------------------------------------------
@dataclass
class ElasticPhase:
    """One traffic phase of the bursty workload."""

    name: str
    clients: List
    #: Virtual second the phase's first request fires.
    start: float
    #: Seconds between consecutive requests within the phase.
    spacing: float


@dataclass(frozen=True)
class ElasticPhaseStats:
    """Measured outcome of one phase."""

    name: str
    clients: int
    completed: int
    #: Virtual seconds from the phase's first request to its last reply.
    makespan_s: float
    #: Completed sessions per virtual second of phase makespan.
    throughput: float

    def as_row(self) -> Dict[str, object]:
        return {
            "phase": self.name,
            "clients": self.clients,
            "completed": self.completed,
            "makespan_s": round(self.makespan_s, 4),
            "throughput": round(self.throughput, 2),
        }


@dataclass
class ElasticResult:
    """Outcome of one elastic (autoscaled bursty-load) run."""

    name: str
    phases: List[ElasticPhaseStats]
    #: The runtime's scaling timeline (grow / drain-start / drain-complete).
    events: List[ScaleEvent]
    #: The autoscaler's decision log.
    decisions: List[AutoscaleDecision]
    peak_workers: int
    final_workers: int
    #: Sessions abandoned by the idle-timeout sweeper — must be zero: the
    #: drain protocol never abandons a session on a removed worker.
    abandoned_sessions: int
    unrouted: int
    clients: int
    completed: int
    #: The deployment's metrics snapshot after the run (router dispatch
    #: cost, per-worker completion counts, per-stage latency).
    final_metrics: Optional[ShardMetrics] = None
    #: Per-stage latency attribution rows (always-on histograms): where
    #: datagram time went across the whole grow-and-drain cycle.
    stage_latency: List[Dict[str, object]] = field(default_factory=list)

    @property
    def all_found(self) -> bool:
        return self.completed == self.clients


@dataclass
class ElasticScenario:
    """Bursty load through an autoscaled sharded runtime.

    Three phases — a steady trickle, a burst an order of magnitude denser,
    a post-burst trickle — drive a runtime deployed at ``min_workers``
    shards under an :class:`~repro.runtime.elastic.ElasticController`.
    The controller grows the pool from observed load during the burst and
    drains it back once the load subsides; :meth:`run` completes only when
    every client is answered *and* the pool is back at ``min_workers``,
    so the result witnesses the full grow-and-drain cycle.
    """

    name: str
    network: SimulatedNetwork
    runtime: ShardedRuntime
    controller: ElasticController
    phases: List[ElasticPhase]
    target: str
    min_workers: int
    description: str = ""

    def run(self, timeout: float = 60.0) -> ElasticResult:
        network = self.network
        runtime = self.runtime
        started: Dict[int, List] = {index: [] for index in range(len(self.phases))}
        for phase_index, phase in enumerate(self.phases):
            for offset, client in enumerate(phase.clients):

                def start(client=client, phase_index=phase_index) -> None:
                    started[phase_index].append(
                        (client, client.start_lookup(network, self.target))
                    )

                network.call_later(phase.start + offset * phase.spacing, start)
        total = sum(len(phase.clients) for phase in self.phases)

        def finished() -> bool:
            if sum(len(entries) for entries in started.values()) < total:
                return False
            if not all(
                client.lookup_result(key) is not None
                for entries in started.values()
                for client, key in entries
            ):
                return False
            # The run is over only once the pool has drained back: this is
            # the loss-free scale-down the control plane exists for.
            return (
                runtime.worker_count == self.min_workers
                and not runtime.scaling_in_progress
            )

        network.run_until(finished, timeout=timeout)
        final_metrics = runtime.metrics() if runtime.router is not None else None
        self.controller.stop()

        phase_stats: List[ElasticPhaseStats] = []
        completed_total = 0
        for phase_index, phase in enumerate(self.phases):
            entries = started[phase_index]
            reply_times: List[float] = []
            completed = 0
            first_send: Optional[float] = None
            for client, key in entries:
                sent_at = client.lookup_started_at(key)
                if sent_at is not None and (first_send is None or sent_at < first_send):
                    first_send = sent_at
                result = client.lookup_result(key)
                if result is not None and result.found:
                    completed += 1
                    reply_times.append((sent_at or 0.0) + result.response_time)
            completed_total += completed
            makespan = (
                max(reply_times) - (first_send or 0.0) if reply_times else 0.0
            )
            phase_stats.append(
                ElasticPhaseStats(
                    name=phase.name,
                    clients=len(phase.clients),
                    completed=completed,
                    makespan_s=makespan,
                    throughput=(completed / makespan) if makespan > 0 else 0.0,
                )
            )

        events = list(runtime.scale_events)
        peak = max(
            [self.min_workers]
            + [event.workers_after for event in events if event.kind == "grow"]
        )
        return ElasticResult(
            name=self.name,
            phases=phase_stats,
            events=events,
            decisions=self.controller.decisions,
            peak_workers=peak,
            final_workers=runtime.worker_count,
            abandoned_sessions=len(runtime.evicted_sessions),
            unrouted=runtime.unrouted_datagrams,
            clients=total,
            completed=completed_total,
            final_metrics=final_metrics,
            stage_latency=[row.as_row() for row in runtime.stage_latency()],
        )


def _elastic_calibration() -> CalibratedLatencies:
    """Fast services with a real per-message translation cost, so worker
    compute — the resource the autoscaler manages — dominates the burst."""
    return CalibratedLatencies(
        link=LatencyModel(0.0001, 0.0002),
        slp_service=LatencyModel(0.001, 0.002),
        mdns_service=LatencyModel(0.01, 0.012),
        ssdp_service=LatencyModel(0.001, 0.002),
        http_service=LatencyModel(0.001, 0.002),
        slp_client_overhead=_NO_LATENCY,
        mdns_client_overhead=_NO_LATENCY,
        upnp_client_overhead=_NO_LATENCY,
        bridge_processing=LatencyModel(0.004, 0.004),
    )


def elastic_scenario(
    case: int = 2,
    steady_clients: int = 6,
    burst_clients: int = 64,
    tail_clients: int = 6,
    burst_start: float = 0.5,
    tail_start: float = 2.5,
    min_workers: int = 1,
    max_workers: int = 4,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: float = 0.004,
    policy: Optional[AutoscalerPolicy] = None,
    tick_interval: float = 0.05,
    routing_delay: float = 0.0,
) -> ElasticScenario:
    """The bursty elastic workload: trickle, burst, trickle.

    The runtime deploys at ``min_workers`` shards with an autoscaler
    bounded at ``max_workers``; the burst's in-flight session count
    crosses the policy's high watermark (so the pool grows), and the tail
    trickle falls below the low watermark (so the pool drains back) —
    with every session completing and none abandoned, which the elastic
    benchmark asserts.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else _elastic_calibration()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )
    total = steady_clients + burst_clients + tail_clients
    clients = _make_concurrent_clients(client_protocol, total)
    phases = [
        ElasticPhase("steady", clients[:steady_clients], 0.0, 0.05),
        ElasticPhase(
            "burst",
            clients[steady_clients : steady_clients + burst_clients],
            burst_start,
            0.0015,
        ),
        ElasticPhase(
            "tail", clients[steady_clients + burst_clients :], tail_start, 0.05
        ),
    ]

    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.validate()
    runtime = ShardedRuntime.from_bridge(
        bridge,
        workers=min_workers,
        serialize_processing=True,
        routing_delay=routing_delay,
    )
    runtime.deploy(network)
    if policy is None:
        policy = AutoscalerPolicy(min_workers=min_workers, max_workers=max_workers)
    controller = ElasticController(
        runtime, Autoscaler(policy), interval=tick_interval
    )
    controller.start(network)

    network.attach(service)
    for client in clients:
        network.attach(client)

    return ElasticScenario(
        name=f"elastic-case-{case}-x{total}-w{min_workers}..{max_workers}",
        network=network,
        runtime=runtime,
        controller=controller,
        phases=phases,
        target=target,
        min_workers=min_workers,
        description=(
            f"{total} legacy {client_protocol} lookups in a "
            f"steady/burst/tail profile through an autoscaled "
            f"{min_workers}..{max_workers}-shard Starlink runtime answering "
            f"from a legacy {service_protocol} service"
        ),
    )

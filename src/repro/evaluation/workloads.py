"""Workload construction for the evaluation scenarios.

A *scenario* wires legacy endpoints (and, for the bridged cases, a deployed
Starlink bridge) onto a fresh simulated network and exposes a uniform
``lookup()`` driver, so the harness can run the same repetition loop for
every row of Fig. 12.

The service identifiers used throughout are the three spellings of the same
test service, one per discovery vocabulary:

* SLP:     ``service:test``
* UPnP:    ``urn:schemas-upnp-org:service:test:1``
* Bonjour: ``_test._tcp.local``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..bridges.specs import BRIDGE_BUILDERS, CASE_NAMES
from ..core.engine.bridge import StarlinkBridge
from ..network.latency import CalibratedLatencies, default_latencies
from ..network.simulated import SimulatedNetwork
from ..protocols.common import LookupResult
from ..protocols.mdns import BonjourBrowser, BonjourResponder
from ..protocols.slp import SLPServiceAgent, SLPUserAgent
from ..protocols.upnp import UPnPControlPoint, UPnPDevice
from ..runtime import ShardedRuntime

__all__ = [
    "SLP_SERVICE_TYPE",
    "UPNP_SERVICE_TYPE",
    "BONJOUR_SERVICE_NAME",
    "Scenario",
    "ConcurrentScenario",
    "ConcurrentResult",
    "legacy_scenario",
    "bridged_scenario",
    "concurrent_scenario",
    "sharded_scenario",
    "LEGACY_PROTOCOLS",
]

SLP_SERVICE_TYPE = "service:test"
UPNP_SERVICE_TYPE = "urn:schemas-upnp-org:service:test:1"
BONJOUR_SERVICE_NAME = "_test._tcp.local"

#: Legacy protocol names in the order of Fig. 12(a).
LEGACY_PROTOCOLS = ["SLP", "Bonjour", "UPnP"]


@dataclass
class Scenario:
    """A ready-to-run evaluation scenario."""

    name: str
    network: SimulatedNetwork
    lookup: Callable[[], LookupResult]
    bridge: Optional[StarlinkBridge] = None
    description: str = ""

    def run(self, repetitions: int) -> List[LookupResult]:
        """Perform ``repetitions`` lookups back to back."""
        return [self.lookup() for _ in range(repetitions)]


def _make_client_and_service(
    client_protocol: str, service_protocol: str, latencies: CalibratedLatencies
):
    """Instantiate the legacy endpoints for a (client, service) protocol pair."""
    if service_protocol == "SLP":
        service = SLPServiceAgent(latency=latencies.slp_service)
    elif service_protocol == "Bonjour":
        service = BonjourResponder(latency=latencies.mdns_service)
    elif service_protocol == "UPnP":
        service = UPnPDevice(
            ssdp_latency=latencies.ssdp_service, http_latency=latencies.http_service
        )
    else:
        raise ValueError(f"unknown service protocol {service_protocol!r}")

    if client_protocol == "SLP":
        client = SLPUserAgent(client_overhead=latencies.slp_client_overhead)
        target = SLP_SERVICE_TYPE
    elif client_protocol == "Bonjour":
        client = BonjourBrowser(client_overhead=latencies.mdns_client_overhead)
        target = BONJOUR_SERVICE_NAME
    elif client_protocol == "UPnP":
        client = UPnPControlPoint(client_overhead=latencies.upnp_client_overhead)
        target = UPNP_SERVICE_TYPE
    else:
        raise ValueError(f"unknown client protocol {client_protocol!r}")
    return client, service, target


def legacy_scenario(
    protocol: str,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
) -> Scenario:
    """A legacy client looking up a legacy service of the *same* protocol.

    These are the baseline measurements of Fig. 12(a).
    """
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)
    client, service, target = _make_client_and_service(protocol, protocol, latencies)
    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"legacy-{protocol.lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        description=f"Legacy {protocol} lookup answered by a legacy {protocol} service",
    )


def bridged_scenario(
    case: int,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
) -> Scenario:
    """One of the six Starlink connector cases of Fig. 12(b).

    The scenario contains the legacy client of the case's *source* protocol,
    the legacy service of its *target* protocol, and the Starlink bridge for
    that pair deployed in between.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    client, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.deploy(network)

    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"case-{case}-{CASE_NAMES[case].replace(' ', '-').lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        bridge=bridge,
        description=(
            f"Case {case}: legacy {client_protocol} client answered by a legacy "
            f"{service_protocol} service through the Starlink bridge"
        ),
    )


# ----------------------------------------------------------------------
# concurrent clients: many overlapping sessions through one bridge
# ----------------------------------------------------------------------
@dataclass
class ConcurrentResult:
    """Outcome of one concurrent-clients run."""

    name: str
    clients: int
    #: Per-client lookup results, in client order (``found=False`` entries
    #: are clients whose reply never arrived).
    results: List[LookupResult]
    #: Virtual seconds from the first request sent to the last reply received.
    makespan: float
    #: Translation time of every completed bridge session (seconds).
    translation_times: List[float]
    #: Engine drop counters after the run (both 0 on a clean run).
    unrouted_datagrams: int = 0
    ignored_datagrams: int = 0

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result.found)

    @property
    def all_found(self) -> bool:
        return self.completed == self.clients

    @property
    def throughput(self) -> float:
        """Completed sessions per virtual second of makespan."""
        if self.makespan <= 0.0:
            return 0.0
        return self.completed / self.makespan


@dataclass
class ConcurrentScenario:
    """N legacy clients with overlapping lookups through one runtime.

    The clients fire their requests ``spacing`` virtual seconds apart —
    far less than a service round trip — so the bridge holds many sessions
    in flight simultaneously.  Clients use the non-blocking
    ``start_lookup``/``lookup_result`` API and match replies by their
    transaction identifier (or, for the two-leg UPnP control point, by
    completing the SSDP+HTTP dialog), which is how correct per-client
    attribution is verified end to end.

    ``bridge`` is any deployment exposing ``sessions`` /
    ``unrouted_datagrams`` / ``ignored_datagrams`` — a single-engine
    :class:`StarlinkBridge` or a multi-worker
    :class:`~repro.runtime.runtime.ShardedRuntime`.
    """

    name: str
    network: SimulatedNetwork
    bridge: object
    clients: List
    target: str
    spacing: float
    description: str = ""

    def run(self, timeout: float = 30.0) -> ConcurrentResult:
        network = self.network
        started: List = []
        for index, client in enumerate(self.clients):

            def start(client=client) -> None:
                started.append((client, client.start_lookup(network, self.target)))

            network.call_later(index * self.spacing, start)

        expected = len(self.clients)

        def all_answered() -> bool:
            if len(started) < expected:
                return False
            return all(client.lookup_result(key) is not None for client, key in started)

        first_send = network.now()
        network.run_until(
            all_answered, timeout=timeout + expected * self.spacing
        )

        # Makespan from the virtual reply timestamps themselves, so idle
        # simulation time after the last reply does not inflate it.
        results: List[LookupResult] = []
        reply_times: List[float] = []
        for client, key in started:
            result = client.lookup_result(key)
            if result is None:
                results.append(LookupResult(found=False))
                continue
            results.append(result)
            reply_times.append(client.lookup_started_at(key) + result.response_time)
        makespan = (max(reply_times) - first_send) if reply_times else 0.0

        return ConcurrentResult(
            name=self.name,
            clients=expected,
            results=results,
            makespan=makespan,
            translation_times=[
                record.translation_time for record in self.bridge.sessions
            ],
            unrouted_datagrams=self.bridge.unrouted_datagrams,
            ignored_datagrams=self.bridge.ignored_datagrams,
        )


def _make_concurrent_clients(client_protocol: str, count: int):
    """N distinct legacy clients of ``client_protocol`` with unique endpoints.

    Transaction identifiers are pinned per client index, so two runs of the
    same workload — regardless of shard count — translate byte-identical
    outputs (the sharding benchmark asserts exactly that).
    """
    clients = []
    for index in range(count):
        if client_protocol == "SLP":
            clients.append(
                SLPUserAgent(
                    host=f"slp-client-{index}.local",
                    port=5100 + index,
                    name=f"slp-client-{index}",
                    xid_start=1000 + index * 16,
                )
            )
        elif client_protocol == "Bonjour":
            clients.append(
                BonjourBrowser(
                    host=f"bonjour-client-{index}.local",
                    port=5200 + index,
                    name=f"bonjour-client-{index}",
                    query_id_start=2000 + index * 16,
                )
            )
        elif client_protocol == "UPnP":
            clients.append(
                UPnPControlPoint(
                    host=f"upnp-client-{index}.local",
                    port=5300 + index,
                    name=f"upnp-client-{index}",
                )
            )
        else:
            raise ValueError(f"unknown client protocol {client_protocol!r}")
    return clients


def concurrent_scenario(
    case: int,
    clients: int = 10,
    spacing: float = 0.002,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
) -> ConcurrentScenario:
    """``clients`` overlapping legacy lookups through the bridge of ``case``.

    All six cases are supported: SLP and Bonjour clients fire one
    non-blocking datagram each, and the two-leg UPnP control point (cases
    3/4) drives its SSDP+HTTP dialog reactively via ``start_control``.
    ``spacing`` staggers the requests — keep it well below the service
    latency so the sessions genuinely interleave.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )
    concurrent_clients = _make_concurrent_clients(client_protocol, clients)

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.deploy(network)

    network.attach(service)
    for client in concurrent_clients:
        network.attach(client)

    return ConcurrentScenario(
        name=f"case-{case}-x{clients}",
        network=network,
        bridge=bridge,
        clients=concurrent_clients,
        target=target,
        spacing=spacing,
        description=(
            f"{clients} overlapping legacy {client_protocol} lookups answered by a "
            f"legacy {service_protocol} service through one Starlink bridge"
        ),
    )


# ----------------------------------------------------------------------
# sharded runtime: N clients across W parallel worker engines
# ----------------------------------------------------------------------
def sharded_scenario(
    case: int,
    clients: int = 100,
    workers: int = 4,
    spacing: float = 0.002,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
    serialize_processing: bool = True,
) -> ConcurrentScenario:
    """``clients`` overlapping lookups through a ``workers``-shard runtime.

    Same clients and legacy service as :func:`concurrent_scenario`, but the
    bridge is deployed as a :class:`~repro.runtime.runtime.ShardedRuntime`:
    a shard router owns the public endpoints and partitions the sessions
    across ``workers`` engines.  Workers model their translation compute as
    a serial resource (``serialize_processing``), so the sweep over worker
    counts measures genuine parallel capacity — run with ``workers=1`` for
    the like-for-like single-shard baseline.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    _, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )
    concurrent_clients = _make_concurrent_clients(client_protocol, clients)

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.validate()
    runtime = ShardedRuntime.from_bridge(
        bridge, workers=workers, serialize_processing=serialize_processing
    )
    runtime.deploy(network)

    network.attach(service)
    for client in concurrent_clients:
        network.attach(client)

    return ConcurrentScenario(
        name=f"case-{case}-x{clients}-w{workers}",
        network=network,
        bridge=runtime,
        clients=concurrent_clients,
        target=target,
        spacing=spacing,
        description=(
            f"{clients} overlapping legacy {client_protocol} lookups through a "
            f"{workers}-shard Starlink runtime answering from a legacy "
            f"{service_protocol} service"
        ),
    )

"""Workload construction for the evaluation scenarios.

A *scenario* wires legacy endpoints (and, for the bridged cases, a deployed
Starlink bridge) onto a fresh simulated network and exposes a uniform
``lookup()`` driver, so the harness can run the same repetition loop for
every row of Fig. 12.

The service identifiers used throughout are the three spellings of the same
test service, one per discovery vocabulary:

* SLP:     ``service:test``
* UPnP:    ``urn:schemas-upnp-org:service:test:1``
* Bonjour: ``_test._tcp.local``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..bridges.specs import BRIDGE_BUILDERS, CASE_NAMES
from ..core.engine.bridge import StarlinkBridge
from ..network.latency import CalibratedLatencies, default_latencies
from ..network.simulated import SimulatedNetwork
from ..protocols.common import LookupResult
from ..protocols.mdns import BonjourBrowser, BonjourResponder
from ..protocols.slp import SLPServiceAgent, SLPUserAgent
from ..protocols.upnp import UPnPControlPoint, UPnPDevice

__all__ = [
    "SLP_SERVICE_TYPE",
    "UPNP_SERVICE_TYPE",
    "BONJOUR_SERVICE_NAME",
    "Scenario",
    "legacy_scenario",
    "bridged_scenario",
    "LEGACY_PROTOCOLS",
]

SLP_SERVICE_TYPE = "service:test"
UPNP_SERVICE_TYPE = "urn:schemas-upnp-org:service:test:1"
BONJOUR_SERVICE_NAME = "_test._tcp.local"

#: Legacy protocol names in the order of Fig. 12(a).
LEGACY_PROTOCOLS = ["SLP", "Bonjour", "UPnP"]


@dataclass
class Scenario:
    """A ready-to-run evaluation scenario."""

    name: str
    network: SimulatedNetwork
    lookup: Callable[[], LookupResult]
    bridge: Optional[StarlinkBridge] = None
    description: str = ""

    def run(self, repetitions: int) -> List[LookupResult]:
        """Perform ``repetitions`` lookups back to back."""
        return [self.lookup() for _ in range(repetitions)]


def _make_client_and_service(
    client_protocol: str, service_protocol: str, latencies: CalibratedLatencies
):
    """Instantiate the legacy endpoints for a (client, service) protocol pair."""
    if service_protocol == "SLP":
        service = SLPServiceAgent(latency=latencies.slp_service)
    elif service_protocol == "Bonjour":
        service = BonjourResponder(latency=latencies.mdns_service)
    elif service_protocol == "UPnP":
        service = UPnPDevice(
            ssdp_latency=latencies.ssdp_service, http_latency=latencies.http_service
        )
    else:
        raise ValueError(f"unknown service protocol {service_protocol!r}")

    if client_protocol == "SLP":
        client = SLPUserAgent(client_overhead=latencies.slp_client_overhead)
        target = SLP_SERVICE_TYPE
    elif client_protocol == "Bonjour":
        client = BonjourBrowser(client_overhead=latencies.mdns_client_overhead)
        target = BONJOUR_SERVICE_NAME
    elif client_protocol == "UPnP":
        client = UPnPControlPoint(client_overhead=latencies.upnp_client_overhead)
        target = UPNP_SERVICE_TYPE
    else:
        raise ValueError(f"unknown client protocol {client_protocol!r}")
    return client, service, target


def legacy_scenario(
    protocol: str,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
) -> Scenario:
    """A legacy client looking up a legacy service of the *same* protocol.

    These are the baseline measurements of Fig. 12(a).
    """
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)
    client, service, target = _make_client_and_service(protocol, protocol, latencies)
    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"legacy-{protocol.lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        description=f"Legacy {protocol} lookup answered by a legacy {protocol} service",
    )


def bridged_scenario(
    case: int,
    latencies: Optional[CalibratedLatencies] = None,
    seed: int = 7,
    processing_delay: Optional[float] = None,
) -> Scenario:
    """One of the six Starlink connector cases of Fig. 12(b).

    The scenario contains the legacy client of the case's *source* protocol,
    the legacy service of its *target* protocol, and the Starlink bridge for
    that pair deployed in between.
    """
    if case not in BRIDGE_BUILDERS:
        raise ValueError(f"unknown case {case}; valid cases are 1..6")
    latencies = latencies if latencies is not None else default_latencies()
    network = SimulatedNetwork(latencies=latencies, seed=seed)

    client_protocol, _, service_protocol = CASE_NAMES[case].partition(" to ")
    client, service, target = _make_client_and_service(
        client_protocol, service_protocol, latencies
    )

    if processing_delay is None:
        processing_delay = latencies.bridge_processing.midpoint
    bridge = BRIDGE_BUILDERS[case](processing_delay=processing_delay)
    bridge.deploy(network)

    network.attach(service)
    network.attach(client)
    return Scenario(
        name=f"case-{case}-{CASE_NAMES[case].replace(' ', '-').lower()}",
        network=network,
        lookup=lambda: client.lookup(network, target),
        bridge=bridge,
        description=(
            f"Case {case}: legacy {client_protocol} client answered by a legacy "
            f"{service_protocol} service through the Starlink bridge"
        ),
    )

"""Command-line entry point for the evaluation harness.

``python -m repro.evaluation [--repetitions N]
[--table fig12a|fig12b|overhead|concurrency|sharding|elastic|live-sharding|all]``
regenerates the paper's Fig. 12 tables (and the Section VI overhead
analysis) plus the concurrent-sessions and sharded-runtime scaling sweeps
and the elastic control-plane run (an autoscaled bursty workload growing
1→4 shards and draining back loss-free), and prints them next to the
published numbers.  This is the same code path the benchmarks use; the
CLI exists so the headline result can be reproduced without pytest.

``--table live-sharding`` runs the sweep over **real loopback sockets**
(thread-per-worker engines, wall-clock timings) and writes the rows to
``BENCH_live_sharding.json`` (directory overridable with
``REPRO_BENCH_RESULTS_DIR``).  It is excluded from ``all``: it needs
permission to bind loopback sockets and measures the machine, not the
model.

``--table chaos`` runs the seeded fault-injection sweep of
:mod:`repro.evaluation.chaos` (membership faults + garbage + loss windows
against the sharded runtime, loss-free contract checked against a
fixed-shard twin) and writes ``BENCH_chaos.json``.  Also excluded from
``all`` — it is an adversarial soak, not a paper table.  An explicit
``--seed N`` replays exactly one schedule: that is the repro command the
soak test and benchmark print when a seed fails; ``--chaos-live`` adds a
real-socket run.

``--table heal`` runs the self-healing sweep: seeded schedules that wedge
a worker mid-wave (and, live, open real UDP loss windows through a
:class:`~repro.network.sockets.FaultyNetwork`) while a
:class:`~repro.runtime.health.FailureDetector` alone must notice,
quarantine, drain and replace the victim — loss-free and byte-identical
to the fixed-shard twin.  Writes ``BENCH_heal.json``; ``--seed N``
replays one schedule and ``--chaos-live`` adds the real-socket run.

``--table micro`` runs the compiled-vs-interpreted MDL codec micro
benchmarks of :mod:`repro.evaluation.micro` (gated on the byte-identity
differential) and writes ``BENCH_micro.json``.  Also excluded from
``all``: it measures the machine, not the model.

``--table telemetry`` runs the continuous-telemetry checks of
:mod:`repro.evaluation.telemetry`: the collector-overhead gate (< 5 %
end-to-end on both runtimes, interleaved min-of-pairs timing) and two
real-TCP scrapes of a live deployment's ``/metrics`` endpoint, linted
against the Prometheus text-format grammar with counters checked for
monotonicity.  Writes ``BENCH_telemetry.json``; the live rows are
skipped gracefully when loopback sockets cannot be bound.  Also excluded
from ``all``: the overhead rows time the machine.

``--table heal`` additionally persists every flight-recorder bundle its
runs captured as ``POSTMORTEM_<run>_<n>.json`` — simulated bundles are
deterministic per seed (byte-stable across replays).

``--table latency`` runs the stage-latency attribution of
:mod:`repro.obs` — the concurrency and sharding workloads with full
tracing, p50/p95/p99 per pipeline stage on both runtimes — and writes
``BENCH_latency.json`` plus a ``TRACE_sample.json`` span-tree export from
a traced chaos run (membership events and datagram spans on one
timeline).  Also excluded from ``all``: stage durations are measured CPU
time, so it times the machine.  The live rows are skipped gracefully when
loopback sockets cannot be bound.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import List, Optional, Sequence

from .chaos import (
    DEFAULT_CHAOS_SEEDS,
    DEFAULT_HEAL_SEEDS,
    run_chaos,
    run_chaos_simulated,
    run_heal,
)
from .harness import (
    DEFAULT_LIVE_CLIENTS,
    DEFAULT_LIVE_WORKER_COUNTS,
    DEFAULT_REPETITIONS,
    DEFAULT_SHARDING_CLIENTS,
    run_concurrency,
    run_elastic,
    run_fig12a,
    run_fig12b,
    run_latency,
    run_live_sharding,
    run_sharding,
)
from .micro import (
    DEFAULT_MICRO_REPETITIONS,
    TRACE_OVERHEAD_THRESHOLD_PCT,
    run_micro,
    run_trace_overhead,
)
from .tables import (
    format_chaos,
    format_concurrency,
    format_heal,
    format_elastic,
    format_fig12a,
    format_fig12b,
    format_latency,
    format_live_sharding,
    format_micro,
    format_sharding,
    format_telemetry,
    overhead_ratios,
)
from .telemetry import (
    COLLECTOR_OVERHEAD_THRESHOLD_PCT,
    run_telemetry,
)

__all__ = [
    "main",
    "build_parser",
    "write_live_sharding_results",
    "write_chaos_results",
    "write_heal_results",
    "write_micro_results",
    "write_latency_results",
    "write_telemetry_results",
    "write_postmortems",
    "write_trace_sample",
]


def _write_bench_json(name: str, **payload) -> str:
    """Write one table's ``BENCH_<name>.json`` artifact and return the path.

    Same payload shape and conventions (results directory from
    ``REPRO_BENCH_RESULTS_DIR``, sorted keys, trailing newline) as the
    benchmark suite's writers, so CI archives the CLI output
    interchangeably with the pytest-benchmark artifacts.
    """
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR", os.getcwd())
    payload = {"benchmark": name, "python": platform.python_version(), **payload}
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_live_sharding_results(rows, clients: int, case: int) -> str:
    """Write the live-sharding rows to ``BENCH_live_sharding.json``."""
    return _write_bench_json(
        "live_sharding",
        case=case,
        clients=clients,
        worker_counts=[row.workers for row in rows],
        rows=[row.as_row() for row in rows],
    )


def write_chaos_results(results, case: int) -> str:
    """Write the chaos rows to ``BENCH_chaos.json``."""
    return _write_bench_json(
        "chaos",
        case=case,
        seeds=[result.seed for result in results],
        rows=[result.as_row() for result in results],
    )


def write_heal_results(results, case: int) -> str:
    """Write the self-healing rows to ``BENCH_heal.json``."""
    return _write_bench_json(
        "heal",
        case=case,
        seeds=[result.seed for result in results],
        rows=[result.as_row() for result in results],
    )


def write_telemetry_results(result) -> str:
    """Write the telemetry rows to ``BENCH_telemetry.json``."""
    return _write_bench_json(
        "telemetry",
        case=result.case,
        rows=[row.as_row() for row in result.rows],
        scrape=result.scrape.as_row() if result.scrape is not None else None,
        live_skipped=result.live_skipped,
        ok=result.ok,
    )


def write_postmortems(results) -> List[str]:
    """Persist every heal run's flight-recorder bundles, one JSON per bundle.

    Files are named ``POSTMORTEM_<run>_<n>.json``.  Simulated bundles
    are captured with ``deterministic=True`` — same seed, same bytes —
    so archiving them per CI run makes telemetry regressions diffable.
    """
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR", os.getcwd())
    paths: List[str] = []
    for result in results:
        for index, bundle in enumerate(result.postmortems):
            path = os.path.join(
                results_dir, f"POSTMORTEM_{result.name}_{index}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2, sort_keys=True)
                handle.write("\n")
            paths.append(path)
    return paths


def write_micro_results(result) -> str:
    """Write the micro rows to ``BENCH_micro.json``."""
    return _write_bench_json(
        "micro",
        messages_checked=result.messages_checked,
        garbage_checked=result.garbage_checked,
        parse_speedup=round(result.parse_speedup, 2),
        compose_speedup=round(result.compose_speedup, 2),
        rows=[row.as_row() for row in result.rows],
    )


def write_latency_results(rows, case: int, overhead=None) -> str:
    """Write the stage-latency rows to ``BENCH_latency.json``."""
    payload = {
        "case": case,
        "scenarios": sorted({row.scenario for row in rows}),
        "rows": [row.as_row() for row in rows],
    }
    if overhead is not None:
        payload["trace_overhead"] = overhead.as_row()
    return _write_bench_json("latency", **payload)


def write_trace_sample(case: int, seed: int) -> str:
    """Run one fully-traced chaos schedule and write ``TRACE_sample.json``.

    The export is the acceptance artifact for the tracing layer: every
    delivered datagram's span tree, plus the membership (scale) events of
    the same run, on one virtual timeline.
    """
    result = run_chaos_simulated(case=case, seed=seed, trace_sample=1.0)
    results_dir = os.environ.get("REPRO_BENCH_RESULTS_DIR", os.getcwd())
    payload = {
        "benchmark": "trace_sample",
        "python": platform.python_version(),
        "case": case,
        "seed": seed,
        "ok": result.ok,
        "scale_events": [event._asdict() for event in result.scale_events],
        "trace": result.trace,
    }
    path = os.path.join(results_dir, "TRACE_sample.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the Starlink paper's evaluation tables (Fig. 12).",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=DEFAULT_REPETITIONS,
        help="lookups per table row (the paper uses 100)",
    )
    parser.add_argument(
        "--table",
        choices=[
            "fig12a",
            "fig12b",
            "overhead",
            "concurrency",
            "sharding",
            "elastic",
            "chaos",
            "heal",
            "micro",
            "live-sharding",
            "latency",
            "telemetry",
            "all",
        ],
        default="all",
        help="which table to regenerate ('all' covers the simulated tables; "
        "chaos, micro, live-sharding, latency and telemetry must be asked "
        "for — chaos runs the seeded fault-injection sweep, micro times the "
        "compiled codecs against the interpreters, live-sharding binds real "
        "loopback sockets, latency prints per-stage p50/p95/p99 from the "
        "tracing layer, telemetry gates the metrics collector's overhead "
        "and lints the live /metrics endpoint)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="simulation seed (default 7); with --table chaos an explicit "
        "seed runs exactly that one schedule — the failing-seed repro path "
        "(same for --table heal)",
    )
    parser.add_argument(
        "--chaos-live",
        action="store_true",
        help="include a live (real-socket) run in the chaos or heal sweep",
    )
    parser.add_argument(
        "--live-runtime",
        choices=["thread", "aio", "both"],
        default="thread",
        help="live substrate for the live-sharding, heal and telemetry "
        "tables: the thread-per-worker runtime, the asyncio event-loop "
        "runtime, or (live-sharding and heal only) both side by side",
    )
    parser.add_argument(
        "--concurrency-case",
        type=int,
        default=2,
        help="bridge case for the concurrency and sharding sweeps (1..6)",
    )
    parser.add_argument(
        "--sharding-clients",
        type=int,
        default=DEFAULT_SHARDING_CLIENTS,
        help="concurrent clients held constant while the worker count is swept",
    )
    parser.add_argument(
        "--live-clients",
        type=int,
        default=DEFAULT_LIVE_CLIENTS,
        help="concurrent OS-socket clients of the live-sharding sweep",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    lines: List[str] = []
    seed = args.seed if args.seed is not None else 7

    legacy = connectors = None
    if args.table in ("fig12a", "overhead", "all"):
        legacy = run_fig12a(repetitions=args.repetitions, seed=seed)
    if args.table in ("fig12b", "overhead", "all"):
        connectors = run_fig12b(repetitions=args.repetitions, seed=seed)

    if args.table in ("fig12a", "all") and legacy is not None:
        lines.append(format_fig12a(legacy))
        lines.append("")
    if args.table in ("fig12b", "all") and connectors is not None:
        lines.append(format_fig12b(connectors))
        lines.append("")
    if args.table in ("overhead", "all") and legacy is not None and connectors is not None:
        lines.append("Overhead relative to the source protocol's legacy lookup (Section VI)")
        lines.append("-" * 70)
        for label, percentage in overhead_ratios(legacy, connectors):
            lines.append(f"{label:<24} {percentage:8.1f} %")
        lines.append("")
    if args.table in ("concurrency", "all"):
        try:
            rows = run_concurrency(case=args.concurrency_case, seed=seed)
        except ValueError as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_concurrency(rows))
        lines.append("")
    if args.table in ("sharding", "all"):
        try:
            sharding_rows = run_sharding(
                case=args.concurrency_case,
                clients=args.sharding_clients,
                seed=seed,
            )
        except ValueError as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_sharding(sharding_rows))
        lines.append("")
    if args.table in ("elastic", "all"):
        try:
            elastic_result = run_elastic(case=args.concurrency_case, seed=seed)
        except (ValueError, RuntimeError) as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_elastic(elastic_result))
        lines.append("")
    if args.table == "chaos":
        # An explicit --seed runs exactly that one schedule — the repro
        # path printed when a sweep (or the soak test) goes red.
        seeds = (args.seed,) if args.seed is not None else DEFAULT_CHAOS_SEEDS
        try:
            chaos_results = run_chaos(
                case=args.concurrency_case,
                seeds=seeds,
                include_live=args.chaos_live,
                raise_on_failure=False,
            )
        except ValueError as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_chaos(chaos_results))
        path = write_chaos_results(chaos_results, case=args.concurrency_case)
        lines.append(f"(rows written to {path})")
        lines.append("")
        if not all(result.ok for result in chaos_results):
            print("\n".join(lines).rstrip())
            return 2
    if args.table == "heal":
        # Same replay contract as chaos: an explicit --seed runs exactly
        # that one self-healing schedule.
        seeds = (args.seed,) if args.seed is not None else DEFAULT_HEAL_SEEDS
        try:
            heal_results = run_heal(
                case=args.concurrency_case,
                seeds=seeds,
                include_live=args.chaos_live,
                raise_on_failure=False,
                live_runtime=args.live_runtime,
            )
        except ValueError as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_heal(heal_results))
        path = write_heal_results(heal_results, case=args.concurrency_case)
        lines.append(f"(rows written to {path})")
        for postmortem_path in write_postmortems(heal_results):
            lines.append(f"(postmortem written to {postmortem_path})")
        lines.append("")
        if not all(result.ok for result in heal_results):
            print("\n".join(lines).rstrip())
            return 2
    if args.table == "micro":
        # --repetitions defaults to the paper's 100 lookups per row; a
        # micro-benchmark loop needs more iterations than that to average
        # out noise, so an untouched default means "use the micro default".
        repetitions = (
            args.repetitions
            if args.repetitions != DEFAULT_REPETITIONS
            else DEFAULT_MICRO_REPETITIONS
        )
        try:
            micro_result = run_micro(repetitions=repetitions)
        except (ValueError, RuntimeError) as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_micro(micro_result))
        path = write_micro_results(micro_result)
        lines.append(f"(rows written to {path})")
        lines.append("")
    if args.table == "live-sharding":
        flavours = (
            ("thread", "aio")
            if args.live_runtime == "both"
            else (args.live_runtime,)
        )
        live_rows = []
        try:
            for flavour in flavours:
                live_rows.extend(
                    run_live_sharding(
                        case=args.concurrency_case,
                        clients=args.live_clients,
                        worker_counts=DEFAULT_LIVE_WORKER_COUNTS,
                        runtime=flavour,
                    )
                )
        except (ValueError, OSError, RuntimeError) as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_live_sharding(live_rows))
        path = write_live_sharding_results(
            live_rows, clients=args.live_clients, case=args.concurrency_case
        )
        lines.append(f"(rows written to {path})")
        lines.append("")
    if args.table == "latency":
        try:
            try:
                latency_rows = run_latency(case=args.concurrency_case, seed=seed)
            except OSError:
                # No loopback sockets (sandboxed CI) — the simulated rows
                # still attribute every stage, so degrade instead of dying.
                latency_rows = run_latency(
                    case=args.concurrency_case, seed=seed, include_live=False
                )
        except (ValueError, RuntimeError) as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_latency(latency_rows))
        overhead = run_trace_overhead(case=args.concurrency_case)
        verdict = "ok" if overhead.ok else "FAIL"
        lines.append(
            f"trace overhead at default sampling: "
            f"{overhead.overhead_pct:+.2f}% "
            f"(gate < {TRACE_OVERHEAD_THRESHOLD_PCT:.0f}%, {verdict})"
        )
        path = write_latency_results(
            latency_rows, case=args.concurrency_case, overhead=overhead
        )
        lines.append(f"(rows written to {path})")
        trace_path = write_trace_sample(case=args.concurrency_case, seed=seed)
        lines.append(f"(sample trace export written to {trace_path})")
        lines.append("")
    if args.table == "telemetry":
        # Telemetry gates one live substrate per invocation; "both" falls
        # back to the thread default (run twice to compare substrates).
        telemetry_runtime = (
            args.live_runtime if args.live_runtime != "both" else "thread"
        )
        try:
            telemetry_result = run_telemetry(
                case=args.concurrency_case, live_runtime=telemetry_runtime
            )
        except (ValueError, RuntimeError, OSError) as exc:
            print("\n".join(lines).rstrip())
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines.append(format_telemetry(telemetry_result))
        path = write_telemetry_results(telemetry_result)
        lines.append(f"(rows written to {path})")
        lines.append("")
        if not telemetry_result.ok:
            print("\n".join(lines).rstrip())
            return 2

    print("\n".join(lines).rstrip())
    return 0

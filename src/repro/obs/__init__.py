"""Low-overhead tracing and stage-latency attribution (`repro.obs`).

The evaluation tables say *how much* throughput the bridge sustains; this
package says *where a single datagram's time went*.  A :class:`Tracer`
stamps every inbound datagram with a trace id at the edge (router or
engine ingress), and the existing seams of the data path — router
classify/place/fan-out, live worker-queue wait, ``EngineCore.dispatch``,
MDL parse/compose, automaton transition, translation — record spans into
per-component fixed-size ring buffers plus always-on power-of-two-bucket
latency histograms.

Two levels of detail, two costs:

* **histograms** are unconditional: every datagram's per-stage duration
  lands in a :class:`LatencyHistogram` (one integer increment + one
  float add), aggregated into ``ShardMetrics.latency`` and the
  ``--table latency`` CLI table;
* **spans** are sampled (default 1-in-64; ``trace_sample=1.0`` for
  tests): only stamped-and-sampled datagrams pay the ring-buffer append,
  and ``runtime.trace_export()`` reassembles their spans into one tree
  per datagram.

Design notes — sampling encoding, clock domains, ring sizing, and the
<5 % parse-overhead gate — live in ``docs/observability.md``.
"""

from .recorder import (
    DEFAULT_JOURNAL_CAPACITY,
    EventJournal,
    FlightRecorder,
    MetricsEndpoint,
    render_prometheus,
)
from .timeseries import (
    DEFAULT_WINDOW_CAPACITY,
    DEFAULT_WINDOW_SECONDS,
    LiveMetricsCollector,
    MetricsCollector,
)
from .tracing import (
    DEFAULT_RING_SIZE,
    DEFAULT_SAMPLE_RATE,
    SPAN_PARENTS,
    STAGE_CLASSIFY,
    STAGE_COMPOSE,
    STAGE_DISPATCH,
    STAGE_FANOUT,
    STAGE_INGRESS,
    STAGE_PARSE,
    STAGE_PLACE,
    STAGE_QUEUE_WAIT,
    STAGE_TRANSITION,
    STAGE_TRANSLATE,
    STAGES,
    LatencyHistogram,
    SpanRecorder,
    Tracer,
    export_traces,
)

__all__ = [
    "DEFAULT_JOURNAL_CAPACITY",
    "DEFAULT_RING_SIZE",
    "DEFAULT_SAMPLE_RATE",
    "DEFAULT_WINDOW_CAPACITY",
    "DEFAULT_WINDOW_SECONDS",
    "SPAN_PARENTS",
    "STAGES",
    "STAGE_CLASSIFY",
    "STAGE_COMPOSE",
    "STAGE_DISPATCH",
    "STAGE_FANOUT",
    "STAGE_INGRESS",
    "STAGE_PARSE",
    "STAGE_PLACE",
    "STAGE_QUEUE_WAIT",
    "STAGE_TRANSITION",
    "STAGE_TRANSLATE",
    "EventJournal",
    "FlightRecorder",
    "LatencyHistogram",
    "LiveMetricsCollector",
    "MetricsCollector",
    "MetricsEndpoint",
    "SpanRecorder",
    "Tracer",
    "export_traces",
    "render_prometheus",
]

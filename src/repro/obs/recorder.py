"""Event journal, flight recorder and the Prometheus exposition.

Three artifacts on one timeline:

* :class:`EventJournal` — an append-only, bounded, structured event log
  (scale events, drain begin/end, health actions, fault-injection
  windows, session-loss incidents).  Events carry the same timeline
  positions as spans (virtual seconds simulated, ``perf_counter``
  live) and cross-link to traces by trace id, so "the detector replaced
  w2 at t=1.84" and "datagram 17's dispatch span at t=1.83" line up
  without timestamp archaeology.
* :class:`FlightRecorder` — the postmortem dumper: on every detector
  quarantine/replace (and on demand) it snapshots the last K collector
  windows, the journal, and the sampled span trees into one JSON-ready
  bundle.  In ``deterministic`` mode every ``perf_counter``-derived
  field (span durations, windowed quantile values, measured seconds) is
  stripped so a seeded simulated run dumps **byte-stable** bundles —
  the PR 7 span-timeline convention extended to whole postmortems.
* :func:`render_prometheus` + :class:`MetricsEndpoint` — the live
  ``/metrics`` exposition: Prometheus text format (v0.0.4) rendered
  from a ``ShardMetrics`` snapshot plus the tracer's stage histograms,
  served as an HTTP response over the existing ``SocketNetwork`` TCP
  reply channel (the same path the bridges' HTTP legs already use), and
  equally scrapeable on the simulated network for tests.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..network.addressing import Endpoint
from ..network.engine import NetworkEngine, NetworkNode
from .tracing import LatencyHistogram, Tracer, export_traces

__all__ = [
    "DEFAULT_JOURNAL_CAPACITY",
    "EventJournal",
    "FlightRecorder",
    "MetricsEndpoint",
    "render_prometheus",
]

#: Events retained by a journal before the oldest are discarded.  A heal
#: run emits tens of events; the bound only matters for runaway loops.
DEFAULT_JOURNAL_CAPACITY = 4096

#: Keys whose values derive from ``time.perf_counter`` and are therefore
#: nondeterministic even on the seeded simulation.  The flight recorder
#: strips them (recursively) in deterministic mode; everything left —
#: timeline positions, counts, counter deltas, virtual-clock backlogs —
#: is a pure function of the seed.
_NONDETERMINISTIC_KEYS = frozenset(
    {
        "duration",
        "p50_us",
        "p95_us",
        "p99_us",
        "mean_us",
        "total_seconds",
        "lock_wait_seconds",
        "classify_seconds",
        "route_lock_wait_seconds",
        "charged_routing_seconds",
    }
)


def _scrub(value: Any) -> Any:
    """Drop nondeterministic keys recursively (dicts/lists only)."""
    if isinstance(value, dict):
        return {
            key: _scrub(item)
            for key, item in value.items()
            if key not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


class EventJournal:
    """Bounded structured event log on the deployment timeline.

    Thread-safe: the live health controller, fault injectors and the
    control thread all append concurrently.  ``clock`` supplies the
    default timeline position; callers that already know *when* (a
    ``ScaleEvent.at``, a ``HealthAction.at``) pass ``at`` explicitly so
    journal entries and the source records agree exactly.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_JOURNAL_CAPACITY,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive, got {capacity}")
        self.clock = clock
        self._events: Deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Events appended over the journal's lifetime (>= retained).
        self.appended = 0

    def append(
        self,
        kind: str,
        at: Optional[float] = None,
        trace: int = 0,
        **fields: Any,
    ) -> dict:
        """Record one event; returns the entry as stored.

        ``trace`` cross-links the event to a datagram's span tree (0 =
        no associated trace); extra keyword fields ride along verbatim
        and must be JSON-ready.
        """
        if at is None:
            at = self.clock() if self.clock is not None else 0.0
        event: dict = {"at": at, "kind": kind}
        if trace:
            event["trace"] = trace >> 1 if trace & 1 else trace
        event.update(fields)
        with self._lock:
            self._events.append(event)
            self.appended += 1
        return event

    def events(
        self, since: Optional[float] = None, kind: Optional[str] = None
    ) -> List[dict]:
        """The retained events, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._events)
        if since is not None:
            events = [event for event in events if event["at"] >= since]
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        return events

    @property
    def dropped(self) -> int:
        """Events discarded because the journal was full."""
        with self._lock:
            return max(0, self.appended - len(self._events))


class FlightRecorder:
    """Dumps postmortem bundles: windows + journal + span trees.

    One recorder per deployment, fed by the same collector/journal/
    tracer the health controller reads.  :meth:`capture` is cheap
    enough to call on every detector action — it copies references into
    plain dicts/lists, no I/O — and the harness (or CLI) decides which
    bundles to persist as ``POSTMORTEM_*.json``.

    ``deterministic=True`` (the simulated heal harness) strips every
    wall-clock-derived field so the bundle is a pure function of the
    seed; see :data:`_NONDETERMINISTIC_KEYS`.
    """

    def __init__(
        self,
        collector: Any = None,
        journal: Optional[EventJournal] = None,
        tracer: Optional[Tracer] = None,
        window_count: int = 16,
        max_traces: int = 8,
        deterministic: bool = False,
    ) -> None:
        self.collector = collector
        self.journal = journal
        self.tracer = tracer
        self.window_count = window_count
        self.max_traces = max_traces
        self.deterministic = deterministic
        self.bundles: List[dict] = []

    def capture(
        self,
        reason: str,
        detail: Optional[dict] = None,
        at: Optional[float] = None,
    ) -> dict:
        """Snapshot the deployment's recent past into one bundle."""
        if at is None:
            if self.journal is not None and self.journal.clock is not None:
                at = self.journal.clock()
            else:
                latest = (
                    self.collector.latest() if self.collector is not None else None
                )
                at = latest["at"] if latest else 0.0
        traces: List[dict] = []
        clock = "unbound"
        if self.tracer is not None:
            export = export_traces(self.tracer)
            clock = export["clock"]
            traces = [
                trace for trace in export["traces"] if trace["complete"]
            ][: self.max_traces]
        bundle: dict = {
            "reason": reason,
            "detail": detail or {},
            "at": at,
            "clock": clock,
            "deterministic": self.deterministic,
            "windows": (
                self.collector.windows(last=self.window_count)
                if self.collector is not None
                else []
            ),
            "events": self.journal.events() if self.journal is not None else [],
            "traces": traces,
        }
        if self.deterministic:
            bundle = _scrub(bundle)
        self.bundles.append(bundle)
        return bundle


# -- Prometheus text exposition ---------------------------------------------

#: Worker-row gauges: (metric suffix, help text, row attribute).
_WORKER_GAUGES: Tuple[Tuple[str, str, str], ...] = (
    ("worker_active_sessions", "Sessions currently open on the worker.", "active_sessions"),
    ("worker_queue_depth", "Deliveries waiting in the worker's queue.", "queue_depth"),
    ("worker_busy_backlog_seconds", "Seconds of compute queued on the worker's busy clock.", "busy_backlog"),
    ("worker_heartbeat_age_seconds", "Seconds since the worker's last heartbeat.", "heartbeat_age"),
    ("worker_draining", "1 while the worker is draining, else 0.", "draining"),
    ("worker_span_seq_high", "Highest trace sequence number seen by the worker's span ring.", "span_seq_high"),
)

#: Worker-row counters (cumulative; worker ids are never reused, so each
#: labelled series is monotone for its lifetime).
_WORKER_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    ("worker_completed_sessions_total", "Sessions completed by the worker.", "completed_sessions"),
    ("worker_evicted_sessions_total", "Idle sessions evicted by the worker.", "evicted_sessions"),
    ("worker_errors_total", "Exceptions raised on the worker's loop.", "errors"),
    ("worker_discriminator_misses_total", "Classify discriminator misses on the worker.", "discriminator_misses"),
    ("worker_garbage_rejects_total", "Unparseable datagrams rejected by the worker.", "garbage_rejects"),
    ("worker_spans_dropped_total", "Spans overwritten in the worker's trace ring.", "spans_dropped"),
)

#: Router counters (cumulative across the deployment's lifetime).
_ROUTER_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    ("router_routed_datagrams_total", "Datagrams routed to a worker.", "routed_datagrams"),
    ("router_unrouted_datagrams_total", "Datagrams no worker accepted.", "unrouted_datagrams"),
    ("router_echoes_dropped_total", "Worker echoes dropped at the router.", "echoes_dropped"),
    ("router_classify_total", "Edge classify passes at the router.", "classify_count"),
    ("router_discriminator_misses_total", "Classify discriminator misses at the router.", "discriminator_misses"),
    ("router_garbage_rejects_total", "Unparseable datagrams rejected at the router.", "garbage_rejects"),
    ("router_network_errors_total", "Socket-substrate errors observed by the deployment.", "network_errors"),
    ("router_tcp_replies_dropped_total", "TCP replies whose client connection had gone away.", "tcp_replies_dropped"),
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _sample(
    lines: List[str], name: str, labels: Optional[Dict[str, str]], value: Any
) -> None:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
        )
        lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
    else:
        lines.append(f"{name} {_format_value(value)}")


def render_prometheus(
    snapshot: Any,
    histograms: Optional[Dict[str, LatencyHistogram]] = None,
    namespace: str = "repro",
) -> str:
    """Render one ``ShardMetrics`` snapshot as Prometheus text (v0.0.4).

    Every metric gets a ``# HELP``/``# TYPE`` pair; worker rows are
    labelled by worker name, histogram series by stage.  Counters are
    the deployment's cumulative counters, so consecutive scrapes are
    monotone — the lint test in ``tests/test_telemetry.py`` checks the
    grammar and the monotonicity.
    """
    lines: List[str] = []

    def header(suffix: str, mtype: str, help_text: str) -> str:
        name = f"{namespace}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        return name

    name = header("workers", "gauge", "Workers serving the ring (not draining).")
    _sample(lines, name, None, snapshot.active_workers)
    name = header("router_sticky_entries", "gauge", "Live sticky-routing table entries.")
    _sample(lines, name, None, snapshot.router.sticky_entries)

    for suffix, help_text, attribute in _WORKER_GAUGES:
        name = header(suffix, "gauge", help_text)
        for row in snapshot.workers:
            value = getattr(row, attribute, 0)
            _sample(lines, name, {"worker": row.name}, value)
    for suffix, help_text, attribute in _WORKER_COUNTERS:
        name = header(suffix, "counter", help_text)
        for row in snapshot.workers:
            value = getattr(row, attribute, 0)
            _sample(lines, name, {"worker": row.name}, value)
    for suffix, help_text, attribute in _ROUTER_COUNTERS:
        name = header(suffix, "counter", help_text)
        _sample(lines, name, None, getattr(snapshot.router, attribute, 0))

    if histograms:
        name = header(
            "stage_latency_seconds",
            "histogram",
            "Per-stage datagram latency (power-of-two buckets).",
        )
        for stage in sorted(histograms):
            hist = histograms[stage]
            if hist.count <= 0:
                continue
            cumulative = 0
            for index, occupancy in enumerate(hist.buckets):
                if occupancy <= 0:
                    continue
                cumulative += occupancy
                edge = (1 << index) * 1e-9
                _sample(
                    lines,
                    f"{name}_bucket",
                    {"stage": stage, "le": f"{edge:.10g}"},
                    cumulative,
                )
            _sample(lines, f"{name}_bucket", {"stage": stage, "le": "+Inf"}, hist.count)
            _sample(lines, f"{name}_sum", {"stage": stage}, hist.total_seconds)
            _sample(lines, f"{name}_count", {"stage": stage}, hist.count)
    return "\n".join(lines) + "\n"


class MetricsEndpoint(NetworkNode):
    """A `/metrics` scrape target on the deployment's own network.

    Live, the node owns one TCP endpoint on the ``SocketNetwork``: a
    scraper connects, sends ``GET /metrics`` (anything, really — the
    node answers every request with the full exposition), half-closes,
    and the response rides the engine's TCP reply channel — exactly the
    path the bridges' HTTP legs already exercise.  On the simulated
    network the same node answers datagram "scrapes", so the format is
    testable without sockets.

    Rendering runs on the engine's receiver thread and only *reads*
    (``runtime.metrics()`` snapshots under its own locks; histogram
    merges copy), so a scrape never blocks the data path.
    """

    def __init__(
        self,
        runtime: Any,
        endpoint: Endpoint,
        namespace: str = "repro",
        name: Optional[str] = None,
    ) -> None:
        self.runtime = runtime
        self.endpoint = endpoint
        self.namespace = namespace
        self.name = name or f"metrics:{endpoint.port}"
        self.scrapes = 0
        self.errors: List[BaseException] = []

    def unicast_endpoints(self) -> List[Endpoint]:
        return [self.endpoint]

    def multicast_groups(self) -> List[Endpoint]:
        return []

    def render(self) -> str:
        """The exposition body for a scrape happening now."""
        tracer = getattr(self.runtime, "tracer", None)
        histograms = tracer.stage_histograms() if tracer is not None else None
        return render_prometheus(
            self.runtime.metrics(), histograms, namespace=self.namespace
        )

    def on_datagram(
        self,
        engine: NetworkEngine,
        data: bytes,
        source: Endpoint,
        destination: Endpoint,
    ) -> None:
        self.scrapes += 1
        try:
            body = self.render().encode("utf-8")
            status = b"200 OK"
        except Exception as exc:  # noqa: BLE001 - a scrape must answer
            self.errors.append(exc)
            body = f"scrape failed: {exc}\n".encode("utf-8")
            status = b"500 Internal Server Error"
        if data[:4] in (b"GET ", b"HEAD"):
            payload = (
                b"HTTP/1.0 " + status + b"\r\n"
                b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
        else:
            payload = body
        engine.send(payload, source=destination, destination=source)

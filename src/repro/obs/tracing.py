"""Tracer, span recorders and latency histograms for the data path.

The instrumentation contract, tuned for the hot path:

* **Trace ids** are stamped once per inbound datagram, at the edge.  The
  id encodes the sampling decision in its low bit — ``(seq << 1) |
  sampled`` — so every span site decides "record a span?" with a single
  ``trace & 1`` test instead of a modulo or a tracer call.  ``trace == 0``
  means *untraced* (a delivery that never crossed an edge, e.g. an
  engine-internal timer): histograms still record, spans never do.
* **Histograms are unconditional**, spans are sampled.  A histogram
  record is one ``int.bit_length`` bucket increment plus a float add; the
  span append (and its timeline-clock read) is only paid by sampled
  datagrams.
* **One logical writer per recorder.**  Each component with a recorder —
  the router, each worker engine — only ever records from one thread at
  a time (the simulation is single-threaded; live, the router records
  under ``_route_lock`` and a worker engine under its loop lock), so the
  ring-buffer append needs no lock.  Metrics/export readers on other
  threads may observe a torn *window* (a span overwritten mid-read) but
  never a torn tuple; the export is a debugging artifact, not a ledger.
* **Two clock domains.**  Span *durations* for CPU stages are measured
  with ``time.perf_counter`` on both runtimes — the simulation's virtual
  clock does not advance inside a callback, so virtual durations of
  compute stages would all be zero (this mirrors the router's existing
  ``classify_seconds``, which has always been wall time even on the
  simulation).  Span *timeline positions* (and wait-stage durations) use
  the tracer's **timeline clock**: the network's virtual clock on the
  simulated runtime — so membership events and spans interleave on one
  timeline — and ``perf_counter`` live.  ``Tracer.use_clock`` is called
  at deploy time by the owning runtime.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_RING_SIZE",
    "DEFAULT_SAMPLE_RATE",
    "SPAN_PARENTS",
    "STAGES",
    "STAGE_CLASSIFY",
    "STAGE_COMPOSE",
    "STAGE_DISPATCH",
    "STAGE_FANOUT",
    "STAGE_INGRESS",
    "STAGE_PARSE",
    "STAGE_PLACE",
    "STAGE_QUEUE_WAIT",
    "STAGE_TRANSITION",
    "STAGE_TRANSLATE",
    "LatencyHistogram",
    "SpanRecorder",
    "Tracer",
    "export_traces",
]

# -- stages -----------------------------------------------------------------

#: Root span: one per datagram, recorded where the datagram enters the
#: deployment (the router's ``on_datagram``, or the engine's own for
#: upstream replies that land on worker sockets and bypass the router).
STAGE_INGRESS = "ingress"
#: The router's single edge classify (compiled discriminator probe or
#: interpreted trial parses) deciding the correlation key.
STAGE_CLASSIFY = "router.classify"
#: Sticky consistent-hash placement + hand-off of a keyed delivery.
STAGE_PLACE = "router.place"
#: Strict-then-lenient fan-out of an unkeyed/multicast delivery.
STAGE_FANOUT = "router.fanout"
#: Live only: time a posted delivery waited in the worker's job queue
#: (includes the loop-lock wait — it is queueing either way).
STAGE_QUEUE_WAIT = "queue.wait"
#: A worker engine dispatching one classified message into a session.
STAGE_DISPATCH = "engine.dispatch"
#: One automaton step: crossing transitions, firing sends/receives.
STAGE_TRANSITION = "automaton.transition"
#: Translation-logic application building the outgoing message.
STAGE_TRANSLATE = "translate"
#: MDL parse (compiled or interpreted — the codecs are byte-identical).
STAGE_PARSE = "mdl.parse"
#: MDL compose of the translated outgoing message.
STAGE_COMPOSE = "mdl.compose"

#: Every stage, in data-path order (also the table row order).
STAGES: Tuple[str, ...] = (
    STAGE_INGRESS,
    STAGE_CLASSIFY,
    STAGE_PLACE,
    STAGE_FANOUT,
    STAGE_QUEUE_WAIT,
    STAGE_PARSE,
    STAGE_DISPATCH,
    STAGE_TRANSITION,
    STAGE_TRANSLATE,
    STAGE_COMPOSE,
)

#: Static parent relation used to reassemble a trace's spans into a tree.
#: Export walks up this map until it finds a stage actually present in
#: the trace (a parse on the direct-ingress path has no classify span, so
#: it attaches to the ingress root instead).
SPAN_PARENTS: Dict[str, str] = {
    STAGE_CLASSIFY: STAGE_INGRESS,
    STAGE_PLACE: STAGE_INGRESS,
    STAGE_FANOUT: STAGE_INGRESS,
    STAGE_QUEUE_WAIT: STAGE_INGRESS,
    STAGE_DISPATCH: STAGE_INGRESS,
    STAGE_PARSE: STAGE_CLASSIFY,
    STAGE_TRANSITION: STAGE_DISPATCH,
    STAGE_TRANSLATE: STAGE_TRANSITION,
    STAGE_COMPOSE: STAGE_TRANSITION,
}

#: Default span sampling: one traced datagram in 64.  Histograms are
#: unconditional regardless.
DEFAULT_SAMPLE_RATE = 1.0 / 64.0

#: Default spans kept per recorder before the ring wraps.  A span tuple
#: is ~100 bytes, so the default costs ~400 KiB per worker; a full
#: chaos-schedule wave at ``sample=1.0`` fits comfortably (a datagram
#: contributes < 10 spans).
DEFAULT_RING_SIZE = 4096


class LatencyHistogram:
    """Power-of-two-bucket latency histogram (nanosecond resolution).

    Bucket ``k`` holds durations whose nanosecond count has bit length
    ``k`` — i.e. ``[2**(k-1), 2**k)`` ns, with bucket 0 catching zero/
    sub-nanosecond durations (virtual-clock waits of width 0 land
    there).  64 buckets cover everything up to ~292 years, so there is
    no overflow path.  Recording is two int ops and two adds — cheap
    enough to stay on unconditionally.

    Live threads record without a lock: bucket increments may race and
    very occasionally drop a count, which is acceptable for a latency
    *distribution* (the conserved counters live elsewhere).
    """

    BUCKET_COUNT = 64

    __slots__ = ("buckets", "count", "total_seconds")

    def __init__(self) -> None:
        self.buckets = [0] * self.BUCKET_COUNT
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        ns = int(seconds * 1e9)
        index = ns.bit_length() if ns > 0 else 0
        if index >= self.BUCKET_COUNT:
            index = self.BUCKET_COUNT - 1
        self.buckets[index] += 1
        self.count += 1
        self.total_seconds += seconds

    def percentile(self, q: float) -> float:
        """Upper bucket edge (seconds) at quantile ``q`` in ``[0, 1]``.

        Power-of-two buckets bound the answer within 2× of the true
        value — plenty for "where did the time go" attribution.
        """
        if self.count <= 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, occupancy in enumerate(self.buckets):
            cumulative += occupancy
            if cumulative >= target and occupancy:
                return (1 << index) * 1e-9 if index else 0.0
        return (1 << (self.BUCKET_COUNT - 1)) * 1e-9

    def merge(self, other: "LatencyHistogram") -> None:
        for index in range(self.BUCKET_COUNT):
            self.buckets[index] += other.buckets[index]
        self.count += other.count
        self.total_seconds += other.total_seconds

    # -- windowed reads ------------------------------------------------
    def snapshot(self) -> Tuple[int, float, Tuple[int, ...]]:
        """An immutable point-in-time view: ``(count, total, buckets)``.

        The snapshot is a plain tuple, so holding one per worker per
        stage across collection windows costs no histogram objects and
        no further copies — :meth:`delta` subtracts straight from it.
        """
        return (self.count, self.total_seconds, tuple(self.buckets))

    def delta(
        self, since: Optional[Tuple[int, float, Tuple[int, ...]]] = None
    ) -> "LatencyHistogram":
        """The records made *after* ``since`` as a fresh histogram.

        This is what makes quantiles windowed instead of
        cumulative-since-boot: percentiles of the delta describe only
        the latest collection window, so warmup never pollutes steady
        state.  ``since=None`` returns a copy of the whole history.
        Live threads record without a lock, so a racing snapshot can be
        momentarily inconsistent; negative differences are clamped to
        zero rather than poisoning the window.
        """
        window = LatencyHistogram()
        if since is None:
            window.merge(self)
            return window
        count, total, buckets = since
        window.count = max(0, self.count - count)
        window.total_seconds = max(0.0, self.total_seconds - total)
        mine = self.buckets
        out = window.buckets
        for index in range(self.BUCKET_COUNT):
            diff = mine[index] - buckets[index]
            if diff > 0:
                out[index] = diff
        return window

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={self.percentile(0.5) * 1e6:.1f}us, "
            f"p99={self.percentile(0.99) * 1e6:.1f}us)"
        )


class SpanRecorder:
    """One component's span ring + per-stage histograms.

    Created via :meth:`Tracer.recorder` by the router and by each worker
    engine.  The ring is a preallocated fixed-size list with a
    monotonically increasing head; once full, the oldest span is
    overwritten (``dropped`` counts the overwrites).  All methods are
    single-writer (see the module docstring) and lock-free.
    """

    __slots__ = ("name", "_tracer", "_size", "_ring", "_head", "hists", "seq_high")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self._tracer = tracer
        self._size = tracer.ring_size
        self._ring: List[Optional[Tuple[int, str, float, float]]] = (
            [None] * self._size
        )
        self._head = 0
        self.hists: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in STAGES
        }
        #: Highest trace sequence number this recorder has seen on a
        #: sampled span — the ring's high-water mark.  Together with
        #: :attr:`dropped` it makes ring-sizing regressions visible on
        #: the metrics rows: a worker whose ``seq_high`` races ahead
        #: while ``dropped`` climbs needs a bigger ring.
        self.seq_high = 0

    # -- hot-path recording -------------------------------------------
    def record(self, trace: int, stage: str, started: float) -> float:
        """Record a CPU-stage duration from ``started`` to *now*.

        ``started`` is a ``perf_counter`` reading; the return value is
        this call's own reading, so consecutive stages chain with one
        clock read per boundary::

            p = perf_counter()
            ...translate...
            p = recorder.record(trace, STAGE_TRANSLATE, p)
            ...compose...
            recorder.record(trace, STAGE_COMPOSE, p)
        """
        ended = perf_counter()
        duration = ended - started
        # The histogram update is inlined (not hist.record(duration)):
        # this method runs per stage per datagram, and the extra method
        # call is measurable against a microsecond-scale parse.
        hist = self.hists[stage]
        ns = int(duration * 1e9)
        index = ns.bit_length() if ns > 0 else 0
        if index > 63:
            index = 63
        hist.buckets[index] += 1
        hist.count += 1
        hist.total_seconds += duration
        if trace & 1:
            self._push((trace >> 1, stage, self._tracer.clock(), duration))
        return ended

    def record_span(self, trace: int, stage: str, duration: float) -> None:
        """Record a stage whose duration the caller already measured."""
        self.hists[stage].record(duration)
        if trace & 1:
            self._push((trace >> 1, stage, self._tracer.clock(), duration))

    def record_wait(self, trace: int, stage: str, t0: float, t1: float) -> None:
        """Record a wait stage measured on the tracer's timeline clock.

        ``t0``/``t1`` are *timeline* readings (virtual seconds on the
        simulation, ``perf_counter`` live), so queue waits are in the
        same domain as the span positions.
        """
        duration = t1 - t0
        self.hists[stage].record(duration)
        if trace & 1:
            self._push((trace >> 1, stage, t1, duration))

    def _push(self, span: Tuple[int, str, float, float]) -> None:
        head = self._head
        self._ring[head % self._size] = span
        self._head = head + 1
        if span[0] > self.seq_high:
            self.seq_high = span[0]

    # -- export-side reads --------------------------------------------
    @property
    def pushed(self) -> int:
        """Total spans ever pushed (retained + dropped): the conserved sum."""
        return self._head

    @property
    def dropped(self) -> int:
        """Spans overwritten because the ring wrapped."""
        return max(0, self._head - self._size)

    def spans(self) -> List[Tuple[int, str, float, float]]:
        """The retained spans, oldest first."""
        head = self._head
        if head <= self._size:
            return [span for span in self._ring[:head] if span is not None]
        start = head % self._size
        window = self._ring[start:] + self._ring[:start]
        return [span for span in window if span is not None]

    def clear(self) -> None:
        self._ring = [None] * self._size
        self._head = 0


class Tracer:
    """Stamps datagrams, hands out recorders, owns the timeline clock.

    One tracer per runtime deployment.  ``sample`` is the fraction of
    datagrams whose spans are captured (``1.0`` → every datagram,
    ``0.0`` → spans off, histograms still on); internally it becomes a
    1-in-N stride so the stamp path is one counter increment and one
    modulo.
    """

    def __init__(
        self,
        sample: float = DEFAULT_SAMPLE_RATE,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"trace sample must be in [0, 1], got {sample}")
        if ring_size <= 0:
            raise ValueError(f"trace ring size must be positive, got {ring_size}")
        self.sample = sample
        #: Stride: every Nth stamped datagram is sampled (0 = never).
        self._every = 0 if sample <= 0.0 else max(1, round(1.0 / sample))
        self.ring_size = ring_size
        self._seq = itertools.count(1)
        #: Timeline clock (span positions, wait durations): perf_counter
        #: until a runtime deploy rebinds it via :meth:`use_clock`.
        self.clock: Callable[[], float] = perf_counter
        self.clock_domain = "perf_counter"
        self._recorders: Dict[str, SpanRecorder] = {}
        self._recorder_lock = threading.Lock()

    def use_clock(self, clock: Callable[[], float], domain: str) -> None:
        """Bind the timeline clock (called by the runtime at deploy)."""
        self.clock = clock
        self.clock_domain = domain

    def stamp(self) -> int:
        """Stamp one inbound datagram; returns its trace id.

        The low bit carries the sampling decision (``trace & 1`` →
        record spans); the rest is a process-unique sequence number.
        ``next`` on :func:`itertools.count` is atomic under the GIL, so
        live receiver threads stamp without a lock.
        """
        seq = next(self._seq)
        sampled = 1 if self._every and seq % self._every == 0 else 0
        return (seq << 1) | sampled

    def recorder(self, name: str) -> SpanRecorder:
        """The named component's recorder (created on first request)."""
        with self._recorder_lock:
            recorder = self._recorders.get(name)
            if recorder is None:
                recorder = SpanRecorder(name, self)
                self._recorders[name] = recorder
            return recorder

    def find(self, name: str) -> Optional[SpanRecorder]:
        """The named recorder if it already exists (never creates one).

        Metrics readers use this: a worker that has not recorded yet has
        no recorder, and materialising one per metrics pass would leak
        empty rings for retired names.
        """
        with self._recorder_lock:
            return self._recorders.get(name)

    def recorders(self) -> List[SpanRecorder]:
        with self._recorder_lock:
            return list(self._recorders.values())

    def stage_histograms(self) -> Dict[str, LatencyHistogram]:
        """Per-stage histograms merged across every recorder."""
        merged = {stage: LatencyHistogram() for stage in STAGES}
        for recorder in self.recorders():
            for stage, hist in recorder.hists.items():
                merged[stage].merge(hist)
        return merged

    @property
    def dropped_spans(self) -> int:
        return sum(recorder.dropped for recorder in self.recorders())


def _attach(nodes: List[dict], present: Dict[str, List[dict]]) -> List[dict]:
    """Attach ``nodes`` (sorted by timeline position) into a span tree.

    Each non-ingress node walks :data:`SPAN_PARENTS` up from its stage
    until it finds a stage present in the trace.  Among that stage's
    spans it prefers one recorded by the *same* component (a worker's
    transition belongs to that worker's dispatch, not another shard's
    fan-out dispatch), then the one closest on the timeline.  Returns
    the root nodes.
    """
    roots: List[dict] = []
    for node in nodes:
        stage = node["stage"]
        if stage == STAGE_INGRESS:
            roots.append(node)
            continue
        parent_stage = SPAN_PARENTS.get(stage, STAGE_INGRESS)
        while parent_stage != STAGE_INGRESS and parent_stage not in present:
            parent_stage = SPAN_PARENTS.get(parent_stage, STAGE_INGRESS)
        candidates = present.get(parent_stage)
        if not candidates:
            roots.append(node)  # orphan: no ingress recorded for the trace
            continue
        same = [c for c in candidates if c["recorder"] == node["recorder"]]
        pool = same or candidates
        # Timestamps mark the *end* of a stage, so a parent usually ends
        # after its children: pick the earliest parent ending at/after
        # this node, falling back to the last one overall.
        parent = pool[-1]
        for candidate in pool:
            if candidate["at"] >= node["at"]:
                parent = candidate
                break
        parent["children"].append(node)
    return roots


def export_traces(tracer: Tracer) -> dict:
    """Reassemble every recorder's spans into one tree per datagram.

    Returns a JSON-ready dict::

        {"clock": "virtual" | "perf_counter",
         "sample": 0.015625,
         "dropped_spans": 0,
         "traces": [{"trace": 17, "complete": true,
                     "spans": [{"stage": "ingress", "at": ..,
                                "duration": .., "recorder": "..",
                                "children": [...]}]}]}

    A trace is **complete** when it has exactly one root and that root
    is its ingress span — i.e. no span was orphaned by ring overwrite
    or a missing edge stamp.
    """
    by_trace: Dict[int, List[dict]] = {}
    for recorder in tracer.recorders():
        for seq, stage, at, duration in recorder.spans():
            by_trace.setdefault(seq, []).append(
                {
                    "stage": stage,
                    "at": at,
                    "duration": duration,
                    "recorder": recorder.name,
                    "children": [],
                }
            )
    traces = []
    for seq in sorted(by_trace):
        nodes = sorted(by_trace[seq], key=lambda node: node["at"])
        present: Dict[str, List[dict]] = {}
        for node in nodes:
            present.setdefault(node["stage"], []).append(node)
        roots = _attach(nodes, present)
        complete = len(roots) == 1 and roots[0]["stage"] == STAGE_INGRESS
        traces.append({"trace": seq, "complete": complete, "spans": roots})
    return {
        "clock": tracer.clock_domain,
        "sample": tracer.sample,
        "dropped_spans": tracer.dropped_spans,
        "traces": traces,
    }

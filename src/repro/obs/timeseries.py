"""Windowed telemetry time-series over ``ShardMetrics`` snapshots.

The metrics layer (PR 4) answers *"what does the deployment look like
right now?"* with one immutable snapshot; the tracing layer (PR 7)
answers *"where did one datagram's time go?"* with cumulative histograms.
Neither answers the fleet question a postmortem (or a grey-failure
detector) actually asks: *"what changed over the last few seconds, per
worker?"*  This module closes that gap with a :class:`MetricsCollector`
that periodically folds snapshots into fixed-size per-worker ring
**time-series windows**:

* **counters** are stored as windowed deltas (and rates over the window
  elapsed time) — ``completed_sessions`` jumping by 40 in one window is
  load; the same cumulative total sitting still is a stall;
* **gauges** (queue depth, busy backlog, heartbeat age, active sessions)
  are point-in-time samples on the window boundary;
* **latency quantiles** are *windowed*: each window takes a
  :meth:`~repro.obs.tracing.LatencyHistogram.snapshot` per worker per
  stage and publishes p50/p95/p99 of the **delta** since the previous
  window, so warmup never pollutes steady state (the footgun the
  cumulative ``stage_latency()`` table had since PR 7).

Clock domains follow the PR 7/PR 8 convention: window positions and
elapsed times are on the **timeline clock** (virtual seconds on the
simulated runtime — the collector is driven by ``network.call_later``
timers — and the monotonic wall clock live, driven by a daemon control
thread).  Quantile *values* are always ``perf_counter``-derived and thus
nondeterministic even on the simulation; the flight recorder
(:mod:`repro.obs.recorder`) strips them when a byte-stable bundle is
required.

The collector only ever *reads* (``runtime.metrics()`` builds a frozen
snapshot; histogram snapshots copy bucket counts), so attaching one to a
deployment cannot change engine behaviour — the heal harness relies on
this to keep detector decisions bit-identical with telemetry on or off.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tracing import Tracer

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "DEFAULT_WINDOW_CAPACITY",
    "MetricsCollector",
    "LiveMetricsCollector",
]

#: Default collection cadence (timeline seconds between windows).  On the
#: simulation this is virtual time — fast and free; live it is the wall
#: clock, where four windows a second keeps the collector invisible next
#: to the 5 % overhead gate.
DEFAULT_WINDOW_SECONDS = 0.25

#: Windows retained per collector before the ring overwrites the oldest.
#: 64 windows × 0.25 s ≈ 16 s of history — several detector reaction
#: times' worth, which is what a postmortem bundle needs.
DEFAULT_WINDOW_CAPACITY = 64

#: Stage-quantile probes published per window.
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_us", 0.50),
    ("p95_us", 0.95),
    ("p99_us", 0.99),
)


class MetricsCollector:
    """Folds periodic ``ShardMetrics`` snapshots into windowed series.

    One collector per deployment.  ``runtime`` is duck-typed: anything
    with ``metrics()`` (returning a ``ShardMetrics``-shaped snapshot),
    an optional ``tracer`` and an optional ``scaling_in_progress`` flag
    works, so the module never imports :mod:`repro.runtime` (which
    imports this package).

    Driving:

    * **simulated** — :meth:`start` schedules a self-rescheduling
      ``network.call_later`` chain, exactly like the PR 8
      ``HealthController``; windows land on deterministic virtual
      times;
    * **live** — use :class:`LiveMetricsCollector`, which drives the
      same :meth:`collect` from a daemon control thread;
    * **manual** — call :meth:`collect` yourself (tests, one-shot
      tables).
    """

    def __init__(
        self,
        runtime: Any,
        window: float = DEFAULT_WINDOW_SECONDS,
        capacity: int = DEFAULT_WINDOW_CAPACITY,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if window <= 0.0:
            raise ValueError(f"collector window must be positive, got {window}")
        if capacity <= 0:
            raise ValueError(f"collector capacity must be positive, got {capacity}")
        self.runtime = runtime
        self.window = window
        self.capacity = capacity
        self.tracer: Optional[Tracer] = (
            tracer if tracer is not None else getattr(runtime, "tracer", None)
        )
        self._ring: List[Optional[dict]] = [None] * capacity
        self._head = 0
        self._ring_lock = threading.Lock()
        #: Previous window's closing position on the timeline (None until
        #: the first window closes).
        self._last_at: Optional[float] = None
        #: Per-worker-id counter baselines: (completed, evicted, errors).
        self._worker_marks: Dict[int, Tuple[int, int, int]] = {}
        #: Router counter baselines, keyed by field name.
        self._router_marks: Dict[str, int] = {}
        #: Per-recorder per-stage histogram snapshots for windowed deltas.
        self._hist_marks: Dict[str, Dict[str, tuple]] = {}
        #: Windows collected over the collector's lifetime (>= retained).
        self.samples = 0
        #: Windows skipped because the runtime was mid-rescale/undeployed.
        self.skipped = 0
        self._running = False
        self._network: Any = None
        #: Whether runtime.metrics() accepts include_latency=False (the
        #: lean snapshot); duck-typed runtimes without the keyword flip
        #: this off on the first collect and get the full snapshot.
        self._lean_metrics = True

    # -- one window ----------------------------------------------------
    def _snapshot(self) -> Any:
        if self._lean_metrics:
            try:
                return self.runtime.metrics(include_latency=False)
            except TypeError:
                self._lean_metrics = False
        return self.runtime.metrics()

    def collect(self) -> Optional[dict]:
        """Close one window now; returns it (or ``None`` when skipped).

        Skips — without disturbing the baselines — when the runtime is
        not deployed or a rescale is in flight, mirroring the health
        controller's "never probe a pool mid-surgery" rule.
        """
        if getattr(self.runtime, "_router", None) is None:
            self.skipped += 1
            return None
        if getattr(self.runtime, "scaling_in_progress", False):
            self.skipped += 1
            return None
        snapshot = self._snapshot()
        at = snapshot.at
        elapsed = 0.0 if self._last_at is None else max(0.0, at - self._last_at)
        self._last_at = at
        window = {
            "at": at,
            "elapsed": elapsed,
            "workers": [self._worker_window(row, elapsed) for row in snapshot.workers],
            "router": self._router_window(snapshot.router, elapsed),
        }
        with self._ring_lock:
            self._ring[self._head % self.capacity] = window
            self._head += 1
        self.samples += 1
        return window

    def _worker_window(self, row: Any, elapsed: float) -> dict:
        completed = row.completed_sessions
        evicted = row.evicted_sessions
        errors = row.errors
        mark = self._worker_marks.get(row.worker_id, (0, 0, 0))
        self._worker_marks[row.worker_id] = (completed, evicted, errors)
        deltas = (
            max(0, completed - mark[0]),
            max(0, evicted - mark[1]),
            max(0, errors - mark[2]),
        )
        window = {
            "worker_id": row.worker_id,
            "name": row.name,
            # gauges: point-in-time on the window boundary
            "active_sessions": row.active_sessions,
            "queue_depth": row.queue_depth,
            "busy_backlog": row.busy_backlog,
            "heartbeat_age": row.heartbeat_age,
            "draining": row.draining,
            "spans_dropped": getattr(row, "spans_dropped", 0),
            "span_seq_high": getattr(row, "span_seq_high", 0),
            # counters: windowed deltas (+ a rate when the window has width)
            "completed_delta": deltas[0],
            "evicted_delta": deltas[1],
            "errors_delta": deltas[2],
            "completed_rate": (deltas[0] / elapsed) if elapsed > 0.0 else 0.0,
            "stages": self._stage_quantiles(row.name),
        }
        return window

    def _stage_quantiles(self, recorder_name: str) -> List[dict]:
        """Windowed per-stage quantiles for one worker's recorder.

        Worker recorders are keyed by the worker's engine name (the same
        string ``WorkerMetrics.name`` carries), so the lookup is exact.
        Only stages that recorded during the window appear — idle stages
        would be 64 zero buckets of noise.
        """
        tracer = self.tracer
        if tracer is None:
            return []
        recorder = tracer.find(recorder_name)
        if recorder is None:
            return []
        marks = self._hist_marks.setdefault(recorder_name, {})
        stages: List[dict] = []
        for stage, hist in recorder.hists.items():
            mark = marks.get(stage)
            if mark is not None and hist.count == mark[0]:
                continue  # idle stage: no records since the last window
            delta = hist.delta(mark)
            marks[stage] = hist.snapshot()
            if delta.count <= 0:
                continue
            entry = {"stage": stage, "count": delta.count}
            for key, q in _QUANTILES:
                entry[key] = delta.percentile(q) * 1e6
            stages.append(entry)
        stages.sort(key=lambda entry: entry["stage"])
        return stages

    def _router_window(self, router: Any, elapsed: float) -> dict:
        fields = (
            "routed_datagrams",
            "unrouted_datagrams",
            "echoes_dropped",
            "classify_count",
            "discriminator_misses",
            "garbage_rejects",
            "network_errors",
            "tcp_replies_dropped",
        )
        window: dict = {"sticky_entries": router.sticky_entries}
        for field in fields:
            value = getattr(router, field)
            delta = max(0, value - self._router_marks.get(field, 0))
            self._router_marks[field] = value
            window[f"{field}_delta"] = delta
        routed = window["routed_datagrams_delta"]
        window["routed_rate"] = (routed / elapsed) if elapsed > 0.0 else 0.0
        return window

    # -- series reads --------------------------------------------------
    def windows(self, last: Optional[int] = None) -> List[dict]:
        """The retained windows, oldest first (optionally only the last N)."""
        with self._ring_lock:
            head = self._head
            if head <= self.capacity:
                retained = [w for w in self._ring[:head] if w is not None]
            else:
                start = head % self.capacity
                retained = [
                    w
                    for w in self._ring[start:] + self._ring[:start]
                    if w is not None
                ]
        if last is not None:
            retained = retained[-last:]
        return retained

    def latest(self) -> Optional[dict]:
        windows = self.windows(last=1)
        return windows[0] if windows else None

    @property
    def dropped_windows(self) -> int:
        """Windows overwritten because the ring wrapped."""
        return max(0, self._head - self.capacity)

    def latency_signal(self) -> Dict[int, float]:
        """Per-worker worst-stage p99 (seconds) from the latest window.

        This is the grey-failure on-ramp the ROADMAP names: the detector
        feeds these through ``HealthPolicy.score`` when (and only when)
        a latency ceiling is configured.  The *worst* stage is the
        signal because a grey worker is typically slow in one stage
        (a stalling upstream leg, a contended parse) while the rest
        stay healthy — averaging across stages would dilute exactly the
        evidence the detector needs.
        """
        latest = self.latest()
        if latest is None:
            return {}
        signal: Dict[int, float] = {}
        for row in latest["workers"]:
            worst = 0.0
            for stage in row["stages"]:
                if stage["p99_us"] > worst:
                    worst = stage["p99_us"]
            signal[row["worker_id"]] = worst * 1e-6
        return signal

    # -- simulated driving (engine-timer chain) ------------------------
    def start(self, network: Any) -> None:
        """Begin periodic collection on ``network``'s timer wheel.

        Mirrors ``HealthController.start``: a self-rescheduling
        ``call_later`` chain, so on the simulation every window closes
        at a deterministic virtual time.
        """
        if self._running:
            return
        self._running = True
        self._network = network
        network.call_later(self.window, self._tick)

    def stop(self) -> None:
        self._running = False
        self._network = None

    def _tick(self) -> None:
        if not self._running or self._network is None:
            return
        self.collect()
        if self._running and self._network is not None:
            self._network.call_later(self.window, self._tick)


class LiveMetricsCollector(MetricsCollector):
    """The collector on the live runtime: a daemon control thread.

    Same windows, same ring; the driver is a thread parked on an event
    wait (exactly the ``LiveHealthController`` shape), so collection
    keeps its cadence even when every worker loop is busy.  Exceptions
    raised by a collection pass are recorded in :attr:`errors` and the
    thread keeps going — telemetry must not die with one bad scrape.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.errors: List[BaseException] = []
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self, network: Any = None) -> None:  # noqa: ARG002 - signature parity
        if self._thread is not None:
            return
        self._running = True
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="metrics-collector"
        )
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop_event.wait(self.window):
            if not self._running:
                return
            try:
                self.collect()
            except Exception as exc:  # noqa: BLE001 - keep collecting
                self.errors.append(exc)

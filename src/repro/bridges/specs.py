"""The six discovery-interoperability bridges of the paper's case study.

Section V evaluates Starlink on three service-discovery protocols — SLP,
UPnP (SSDP + HTTP) and Bonjour (mDNS) — across all six directed pairs:

1. SLP client  -> UPnP service      (Fig. 4: the SLP/SSDP/HTTP merged automaton)
2. SLP client  -> Bonjour service   (Fig. 10: the SLP/mDNS merged automaton)
3. UPnP client -> SLP service
4. UPnP client -> Bonjour service
5. Bonjour client -> UPnP service
6. Bonjour client -> SLP service

Each function below builds the corresponding :class:`StarlinkBridge`: the
merged automaton (component coloured automata + δ-transitions) together
with its translation logic, plus the MDL specifications of the protocols
involved.  Everything is expressed with the high-level models only — no
protocol-specific executable code — which is the paper's central claim.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.automata.merge import LambdaAction, MergedAutomaton
from ..core.engine.bridge import StarlinkBridge
from ..core.engine.session import FieldCorrelator
from ..core.translation.logic import MessageFieldRef, TranslationLogic
from ..protocols.http import (
    HTTP_GET,
    HTTP_OK,
    http_client_automaton,
    http_mdl,
    http_server_automaton,
)
from ..protocols.mdns import (
    DNS_QUESTION,
    DNS_RESPONSE,
    mdns_mdl,
    mdns_requester_automaton,
    mdns_responder_automaton,
)
from ..protocols.slp import (
    SLP_SRVREPLY,
    SLP_SRVREQ,
    slp_mdl,
    slp_requester_automaton,
    slp_responder_automaton,
)
from ..protocols.ssdp import (
    SSDP_MSEARCH,
    SSDP_RESP,
    ssdp_mdl,
    ssdp_requester_automaton,
    ssdp_responder_automaton,
)

__all__ = [
    "slp_to_upnp_bridge",
    "slp_to_bonjour_bridge",
    "upnp_to_slp_bridge",
    "upnp_to_bonjour_bridge",
    "bonjour_to_upnp_bridge",
    "bonjour_to_slp_bridge",
    "BRIDGE_BUILDERS",
    "CASE_NAMES",
]

_SSDP_GROUP_HOSTPORT = "239.255.255.250:1900"

#: Transaction-identifier fields of the XID-bearing protocols.  Bridges pass
#: these to a :class:`FieldCorrelator` so concurrent sessions demultiplex on
#: the identifier a legacy peer echoes back (SLP's XID, DNS's ID) instead of
#: relying on source addresses alone.  SSDP and HTTP carry no identifier and
#: fall back to endpoint/waiting-session correlation.
_SLP_XID_FIELDS = {SLP_SRVREQ: "XID", SLP_SRVREPLY: "XID"}
_DNS_ID_FIELDS = {DNS_QUESTION: "ID", DNS_RESPONSE: "ID"}


def _correlator(*field_maps: Dict[str, str]) -> FieldCorrelator:
    fields: Dict[str, str] = {}
    for field_map in field_maps:
        fields.update(field_map)
    return FieldCorrelator(fields)


def _msearch_boilerplate(translation: TranslationLogic, source_message: str, source_field: str) -> None:
    """Constant SSDP M-SEARCH fields every bridge acting as a UPnP client needs."""
    translation.assign(f"{SSDP_MSEARCH}.URI", f"{source_message}.{source_field}", "constant", "*")
    translation.assign(
        f"{SSDP_MSEARCH}.Version", f"{source_message}.{source_field}", "constant", "HTTP/1.1"
    )
    translation.assign(
        f"{SSDP_MSEARCH}.HOST", f"{source_message}.{source_field}", "constant", _SSDP_GROUP_HOSTPORT
    )
    translation.assign(
        f"{SSDP_MSEARCH}.MAN", f"{source_message}.{source_field}", "constant", '"ssdp:discover"'
    )
    translation.assign(f"{SSDP_MSEARCH}.MX", f"{source_message}.{source_field}", "constant", "3")


def _ssdp_response_boilerplate(translation: TranslationLogic) -> None:
    """Constant fields of the SSDP response a bridge serves to a control point."""
    translation.assign(f"{SSDP_RESP}.URI", f"{SSDP_MSEARCH}.ST", "constant", "200")
    translation.assign(f"{SSDP_RESP}.Version", f"{SSDP_MSEARCH}.ST", "constant", "OK")
    translation.assign(
        f"{SSDP_RESP}.CACHE-CONTROL", f"{SSDP_MSEARCH}.ST", "constant", "max-age=1800"
    )
    translation.assign(
        f"{SSDP_RESP}.SERVER", f"{SSDP_MSEARCH}.ST", "constant", "Starlink/1.0 UPnP/1.0"
    )
    translation.assign(
        f"{SSDP_RESP}.USN", f"{SSDP_MSEARCH}.ST", "constant", "uuid:starlink-bridge::upnp"
    )
    translation.assign(f"{SSDP_RESP}.ST", f"{SSDP_MSEARCH}.ST")
    translation.assign(
        f"{SSDP_RESP}.LOCATION", f"{SSDP_MSEARCH}.ST", "bridge_http_location", "HTTP", "/description.xml"
    )


def _http_ok_boilerplate(translation: TranslationLogic, url_source: str) -> None:
    """Constant fields of the HTTP 200 OK a bridge serves to a control point."""
    translation.assign(f"{HTTP_OK}.URI", url_source, "constant", "200")
    translation.assign(f"{HTTP_OK}.Version", url_source, "constant", "OK")
    translation.assign(f"{HTTP_OK}.Server", url_source, "constant", "Starlink/1.0")
    translation.assign(f"{HTTP_OK}.Content-Type", url_source, "constant", "text/xml")
    translation.assign(f"{HTTP_OK}.Body", url_source, "device_description")


def _http_get_from_location(translation: TranslationLogic) -> None:
    """Derive the HTTP GET of the device description from the SSDP LOCATION."""
    translation.assign(f"{HTTP_GET}.URI", f"{SSDP_RESP}.LOCATION", "url_path")
    translation.assign(f"{HTTP_GET}.Host", f"{SSDP_RESP}.LOCATION", "url_host")
    translation.assign(f"{HTTP_GET}.Connection", f"{SSDP_RESP}.LOCATION", "constant", "close")


# ----------------------------------------------------------------------
# Case 1: SLP client -> UPnP service (Fig. 4 of the paper)
# ----------------------------------------------------------------------
def slp_to_upnp_bridge(**kwargs: object) -> StarlinkBridge:
    """SLP lookup answered by a UPnP device (the paper's Fig. 4/5 merge)."""
    slp = slp_responder_automaton("SLP")
    ssdp = ssdp_requester_automaton("SSDP")
    http = http_client_automaton("HTTP")

    translation = TranslationLogic()
    translation.declare_equivalent(SSDP_MSEARCH, SLP_SRVREQ)
    translation.declare_equivalent(HTTP_GET, SSDP_RESP)
    translation.declare_equivalent(SLP_SRVREPLY, HTTP_OK)

    translation.assign(f"{SSDP_MSEARCH}.ST", f"{SLP_SRVREQ}.SRVType", "upnp_service_type")
    _msearch_boilerplate(translation, SLP_SRVREQ, "SRVType")
    _http_get_from_location(translation)
    translation.assign(f"{SLP_SRVREPLY}.URLEntry", f"{HTTP_OK}.Body", "url_base")
    translation.assign(f"{SLP_SRVREPLY}.XID", f"{SLP_SRVREQ}.XID")
    translation.assign(f"{SLP_SRVREPLY}.LangTag", f"{SLP_SRVREQ}.LangTag")

    merged = MergedAutomaton(
        "slp-to-upnp", [slp, ssdp, http], translation, initial_automaton="SLP"
    )
    merged.add_delta("SLP.s11", "SSDP.s20")
    merged.add_delta(
        "SSDP.s22",
        "HTTP.s30",
        actions=[LambdaAction("set_host", (MessageFieldRef(SSDP_RESP, "LOCATION"),))],
    )
    merged.add_delta("HTTP.s32", "SLP.s11")

    kwargs.setdefault("correlator", _correlator(_SLP_XID_FIELDS))
    return StarlinkBridge(
        merged,
        {"SLP": slp_mdl(), "SSDP": ssdp_mdl(), "HTTP": http_mdl()},
        **kwargs,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Case 2: SLP client -> Bonjour service (Fig. 10 of the paper)
# ----------------------------------------------------------------------
def slp_to_bonjour_bridge(**kwargs: object) -> StarlinkBridge:
    """SLP lookup answered by a Bonjour responder (the paper's Fig. 10 merge)."""
    slp = slp_responder_automaton("SLP")
    mdns = mdns_requester_automaton("mDNS")

    translation = TranslationLogic()
    translation.declare_equivalent(DNS_QUESTION, SLP_SRVREQ)
    translation.declare_equivalent(SLP_SRVREPLY, DNS_RESPONSE)

    translation.assign(f"{DNS_QUESTION}.DomainName", f"{SLP_SRVREQ}.SRVType", "service_type_to_dns")
    translation.assign(f"{DNS_QUESTION}.ID", f"{SLP_SRVREQ}.XID")
    translation.assign(f"{DNS_QUESTION}.QDCount", f"{SLP_SRVREQ}.SRVType", "constant", "1")
    translation.assign(f"{DNS_QUESTION}.QType", f"{SLP_SRVREQ}.SRVType", "constant", "16")
    translation.assign(f"{DNS_QUESTION}.QClass", f"{SLP_SRVREQ}.SRVType", "constant", "1")
    translation.assign(f"{SLP_SRVREPLY}.URLEntry", f"{DNS_RESPONSE}.RDATA")
    translation.assign(f"{SLP_SRVREPLY}.XID", f"{SLP_SRVREQ}.XID")
    translation.assign(f"{SLP_SRVREPLY}.LangTag", f"{SLP_SRVREQ}.LangTag")

    merged = MergedAutomaton(
        "slp-to-bonjour", [slp, mdns], translation, initial_automaton="SLP"
    )
    merged.add_delta("SLP.s11", "mDNS.s40")
    merged.add_delta("mDNS.s42", "SLP.s11")

    kwargs.setdefault("correlator", _correlator(_SLP_XID_FIELDS, _DNS_ID_FIELDS))
    return StarlinkBridge(
        merged, {"SLP": slp_mdl(), "mDNS": mdns_mdl()}, **kwargs  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Case 3: UPnP client -> SLP service
# ----------------------------------------------------------------------
def upnp_to_slp_bridge(**kwargs: object) -> StarlinkBridge:
    """UPnP control-point lookup answered by an SLP service agent."""
    ssdp = ssdp_responder_automaton("SSDP")
    http = http_server_automaton("HTTP")
    slp = slp_requester_automaton("SLP")

    translation = TranslationLogic()
    translation.declare_equivalent(SLP_SRVREQ, SSDP_MSEARCH)
    translation.declare_equivalent(SSDP_RESP, SLP_SRVREPLY)
    translation.declare_equivalent(HTTP_OK, SLP_SRVREPLY)

    translation.assign(f"{SLP_SRVREQ}.SRVType", f"{SSDP_MSEARCH}.ST", "slp_service_type")
    translation.assign(f"{SLP_SRVREQ}.LangTag", f"{SSDP_MSEARCH}.ST", "constant", "en")
    translation.assign(f"{SLP_SRVREQ}.Version", f"{SSDP_MSEARCH}.ST", "constant", "2")
    translation.assign(f"{SLP_SRVREQ}.XID", f"{SSDP_MSEARCH}.ST", "constant", "4660")
    _ssdp_response_boilerplate(translation)
    _http_ok_boilerplate(translation, f"{SLP_SRVREPLY}.URLEntry")

    merged = MergedAutomaton(
        "upnp-to-slp", [ssdp, http, slp], translation, initial_automaton="SSDP"
    )
    merged.add_delta("SSDP.r21", "SLP.c10")
    merged.add_delta("SLP.c12", "SSDP.r21")
    merged.add_delta("SSDP.r22", "HTTP.h30")

    kwargs.setdefault("correlator", _correlator(_SLP_XID_FIELDS))
    return StarlinkBridge(
        merged,
        {"SSDP": ssdp_mdl(), "HTTP": http_mdl(), "SLP": slp_mdl()},
        **kwargs,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Case 4: UPnP client -> Bonjour service
# ----------------------------------------------------------------------
def upnp_to_bonjour_bridge(**kwargs: object) -> StarlinkBridge:
    """UPnP control-point lookup answered by a Bonjour responder."""
    ssdp = ssdp_responder_automaton("SSDP")
    http = http_server_automaton("HTTP")
    mdns = mdns_requester_automaton("mDNS")

    translation = TranslationLogic()
    translation.declare_equivalent(DNS_QUESTION, SSDP_MSEARCH)
    translation.declare_equivalent(SSDP_RESP, DNS_RESPONSE)
    translation.declare_equivalent(HTTP_OK, DNS_RESPONSE)

    translation.assign(f"{DNS_QUESTION}.DomainName", f"{SSDP_MSEARCH}.ST", "service_type_to_dns")
    translation.assign(f"{DNS_QUESTION}.QDCount", f"{SSDP_MSEARCH}.ST", "constant", "1")
    translation.assign(f"{DNS_QUESTION}.QType", f"{SSDP_MSEARCH}.ST", "constant", "16")
    translation.assign(f"{DNS_QUESTION}.QClass", f"{SSDP_MSEARCH}.ST", "constant", "1")
    _ssdp_response_boilerplate(translation)
    _http_ok_boilerplate(translation, f"{DNS_RESPONSE}.RDATA")

    merged = MergedAutomaton(
        "upnp-to-bonjour", [ssdp, http, mdns], translation, initial_automaton="SSDP"
    )
    merged.add_delta("SSDP.r21", "mDNS.s40")
    merged.add_delta("mDNS.s42", "SSDP.r21")
    merged.add_delta("SSDP.r22", "HTTP.h30")

    kwargs.setdefault("correlator", _correlator(_DNS_ID_FIELDS))
    return StarlinkBridge(
        merged,
        {"SSDP": ssdp_mdl(), "HTTP": http_mdl(), "mDNS": mdns_mdl()},
        **kwargs,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Case 5: Bonjour client -> UPnP service
# ----------------------------------------------------------------------
def bonjour_to_upnp_bridge(**kwargs: object) -> StarlinkBridge:
    """Bonjour browse answered by a UPnP device."""
    mdns = mdns_responder_automaton("mDNS")
    ssdp = ssdp_requester_automaton("SSDP")
    http = http_client_automaton("HTTP")

    translation = TranslationLogic()
    translation.declare_equivalent(SSDP_MSEARCH, DNS_QUESTION)
    translation.declare_equivalent(HTTP_GET, SSDP_RESP)
    translation.declare_equivalent(DNS_RESPONSE, HTTP_OK)

    translation.assign(f"{SSDP_MSEARCH}.ST", f"{DNS_QUESTION}.DomainName", "upnp_service_type")
    _msearch_boilerplate(translation, DNS_QUESTION, "DomainName")
    _http_get_from_location(translation)
    translation.assign(f"{DNS_RESPONSE}.RDATA", f"{HTTP_OK}.Body", "url_base")
    translation.assign(f"{DNS_RESPONSE}.ID", f"{DNS_QUESTION}.ID")
    translation.assign(f"{DNS_RESPONSE}.AnswerName", f"{DNS_QUESTION}.DomainName")
    translation.assign(f"{DNS_RESPONSE}.ANCount", f"{DNS_QUESTION}.DomainName", "constant", "1")
    translation.assign(f"{DNS_RESPONSE}.AType", f"{DNS_QUESTION}.QType")
    translation.assign(f"{DNS_RESPONSE}.AClass", f"{DNS_QUESTION}.QClass")
    translation.assign(f"{DNS_RESPONSE}.TTL", f"{DNS_QUESTION}.DomainName", "constant", "120")

    merged = MergedAutomaton(
        "bonjour-to-upnp", [mdns, ssdp, http], translation, initial_automaton="mDNS"
    )
    merged.add_delta("mDNS.r41", "SSDP.s20")
    merged.add_delta(
        "SSDP.s22",
        "HTTP.s30",
        actions=[LambdaAction("set_host", (MessageFieldRef(SSDP_RESP, "LOCATION"),))],
    )
    merged.add_delta("HTTP.s32", "mDNS.r41")

    kwargs.setdefault("correlator", _correlator(_DNS_ID_FIELDS))
    return StarlinkBridge(
        merged,
        {"mDNS": mdns_mdl(), "SSDP": ssdp_mdl(), "HTTP": http_mdl()},
        **kwargs,  # type: ignore[arg-type]
    )


# ----------------------------------------------------------------------
# Case 6: Bonjour client -> SLP service
# ----------------------------------------------------------------------
def bonjour_to_slp_bridge(**kwargs: object) -> StarlinkBridge:
    """Bonjour browse answered by an SLP service agent."""
    mdns = mdns_responder_automaton("mDNS")
    slp = slp_requester_automaton("SLP")

    translation = TranslationLogic()
    translation.declare_equivalent(SLP_SRVREQ, DNS_QUESTION)
    translation.declare_equivalent(DNS_RESPONSE, SLP_SRVREPLY)

    translation.assign(f"{SLP_SRVREQ}.SRVType", f"{DNS_QUESTION}.DomainName", "slp_service_type")
    translation.assign(f"{SLP_SRVREQ}.LangTag", f"{DNS_QUESTION}.DomainName", "constant", "en")
    translation.assign(f"{SLP_SRVREQ}.Version", f"{DNS_QUESTION}.DomainName", "constant", "2")
    translation.assign(f"{SLP_SRVREQ}.XID", f"{DNS_QUESTION}.ID")
    translation.assign(f"{DNS_RESPONSE}.RDATA", f"{SLP_SRVREPLY}.URLEntry")
    translation.assign(f"{DNS_RESPONSE}.ID", f"{DNS_QUESTION}.ID")
    translation.assign(f"{DNS_RESPONSE}.AnswerName", f"{DNS_QUESTION}.DomainName")
    translation.assign(f"{DNS_RESPONSE}.ANCount", f"{DNS_QUESTION}.DomainName", "constant", "1")
    translation.assign(f"{DNS_RESPONSE}.AType", f"{DNS_QUESTION}.QType")
    translation.assign(f"{DNS_RESPONSE}.AClass", f"{DNS_QUESTION}.QClass")
    translation.assign(f"{DNS_RESPONSE}.TTL", f"{DNS_QUESTION}.DomainName", "constant", "120")

    merged = MergedAutomaton(
        "bonjour-to-slp", [mdns, slp], translation, initial_automaton="mDNS"
    )
    merged.add_delta("mDNS.r41", "SLP.c10")
    merged.add_delta("SLP.c12", "mDNS.r41")

    kwargs.setdefault("correlator", _correlator(_DNS_ID_FIELDS, _SLP_XID_FIELDS))
    return StarlinkBridge(
        merged, {"mDNS": mdns_mdl(), "SLP": slp_mdl()}, **kwargs  # type: ignore[arg-type]
    )


#: Bridge builders keyed by the paper's case number (Fig. 12(b)).
BRIDGE_BUILDERS: Dict[int, Callable[..., StarlinkBridge]] = {
    1: slp_to_upnp_bridge,
    2: slp_to_bonjour_bridge,
    3: upnp_to_slp_bridge,
    4: upnp_to_bonjour_bridge,
    5: bonjour_to_upnp_bridge,
    6: bonjour_to_slp_bridge,
}

#: Human-readable case names, matching Fig. 12(b) row labels.
CASE_NAMES: Dict[int, str] = {
    1: "SLP to UPnP",
    2: "SLP to Bonjour",
    3: "UPnP to SLP",
    4: "UPnP to Bonjour",
    5: "Bonjour to UPnP",
    6: "Bonjour to SLP",
}

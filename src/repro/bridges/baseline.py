"""Baseline interoperability mechanisms for the ablation benchmarks.

The related-work section of the paper contrasts Starlink with two
established approaches:

* **hand-coded software bridges** (Section II-B): a developer writes the
  byte-level translation between one fixed protocol pair;
* **Enterprise Service Buses** (Section II-B): every protocol is mapped to
  a common intermediary representation and back.

Neither is a *runtime* solution — that is Starlink's contribution — but
they are useful ablation baselines for the question "what does interpreting
high-level models at runtime cost compared to dedicated code?".  This
module implements both for the SLP -> Bonjour direction:

* :class:`HandCodedSlpToBonjourBridge` packs and unpacks the wire formats
  with hard-wired ``struct``-style code and no MDL interpretation;
* :class:`EsbStyleSlpToBonjourBridge` routes the same translation through a
  generic intermediary dictionary (parse -> intermediary -> compose), the
  N-1-M pattern of an ESB.

Both expose ``translate_request`` / ``translate_response`` operating purely
on byte strings, which is what the ablation benchmark measures.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from ..core.mdl.base import create_composer, create_parser
from ..core.message import AbstractMessage
from ..protocols.mdns.mdl import DNS_QUESTION, DNS_RESPONSE, DNS_RESPONSE_FLAGS, mdns_mdl
from ..protocols.slp.mdl import SLP_SRVREPLY, SLP_SRVREQ, slp_mdl

__all__ = ["HandCodedSlpToBonjourBridge", "EsbStyleSlpToBonjourBridge"]


def _encode_dns_name(name: str) -> bytes:
    out = bytearray()
    for label in name.strip(".").split("."):
        raw = label.encode("utf-8")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def _decode_dns_name(data: bytes, offset: int) -> Tuple[str, int]:
    labels = []
    while True:
        length = data[offset]
        offset += 1
        if length == 0:
            break
        labels.append(data[offset : offset + length].decode("utf-8"))
        offset += length
    return ".".join(labels), offset


def _service_type_to_dns(service_type: str) -> str:
    core = service_type.split(":")[-1] or "service"
    return f"_{core}._tcp.local"


class HandCodedSlpToBonjourBridge:
    """A dedicated, hand-written SLP -> Bonjour translator (no models)."""

    name = "hand-coded"

    def translate_request(self, slp_request: bytes) -> bytes:
        """SLP SrvRqst bytes -> DNS question bytes."""
        # SLP header: version(1) function(1) length(3) reserved(2) next-ext(3)
        # xid(2) lang-len(2) lang(n)
        xid = struct.unpack("!H", slp_request[10:12])[0]
        lang_length = struct.unpack("!H", slp_request[12:14])[0]
        offset = 14 + lang_length
        pr_length = struct.unpack("!H", slp_request[offset : offset + 2])[0]
        offset += 2 + pr_length
        srv_length = struct.unpack("!H", slp_request[offset : offset + 2])[0]
        offset += 2
        service_type = slp_request[offset : offset + srv_length].decode("utf-8")

        qname = _encode_dns_name(_service_type_to_dns(service_type))
        header = struct.pack("!HHHHHH", xid, 0, 1, 0, 0, 0)
        question = qname + struct.pack("!HH", 16, 1)
        return header + question

    def translate_response(self, dns_response: bytes, xid: int, lang: str = "en") -> bytes:
        """DNS response bytes -> SLP SrvRply bytes."""
        offset = 12
        _, offset = _decode_dns_name(dns_response, offset)
        _, _, _, rdlength = struct.unpack("!HHIH", dns_response[offset : offset + 10])
        offset += 10
        url = dns_response[offset : offset + rdlength]

        lang_raw = lang.encode("utf-8")
        body = struct.pack("!HHHH", 0, 1, 65535, len(url)) + url
        header_without_length = (
            struct.pack("!BB", 2, 2)
            + b"\x00\x00\x00"  # length placeholder
            + struct.pack("!H", 0)
            + b"\x00\x00\x00"
            + struct.pack("!H", xid)
            + struct.pack("!H", len(lang_raw))
            + lang_raw
        )
        total = len(header_without_length) + len(body)
        header = bytearray(header_without_length)
        header[2:5] = total.to_bytes(3, "big")
        return bytes(header) + body


class EsbStyleSlpToBonjourBridge:
    """An ESB-style translator: protocol -> intermediary dict -> protocol.

    The intermediary is the "greatest common subset" representation the
    paper criticises: only the fields every discovery protocol shares
    (a service type, a transaction id, a service URL) survive the mapping.
    """

    name = "esb-intermediary"

    def __init__(self) -> None:
        self._slp_parser = create_parser(slp_mdl())
        self._slp_composer = create_composer(slp_mdl())
        self._dns_parser = create_parser(mdns_mdl())
        self._dns_composer = create_composer(mdns_mdl())

    # -- protocol -> intermediary ----------------------------------------
    def request_to_intermediary(self, slp_request: bytes) -> Dict[str, object]:
        message = self._slp_parser.parse(slp_request)
        return {
            "kind": "lookup",
            "service": str(message.get("SRVType", "")),
            "transaction": int(message.get("XID", 0) or 0),
        }

    def response_to_intermediary(self, dns_response: bytes) -> Dict[str, object]:
        message = self._dns_parser.parse(dns_response)
        return {
            "kind": "result",
            "url": str(message.get("RDATA", "")),
            "transaction": int(message.get("ID", 0) or 0),
        }

    # -- intermediary -> protocol ----------------------------------------
    def intermediary_to_dns_question(self, intermediary: Dict[str, object]) -> bytes:
        question = AbstractMessage(DNS_QUESTION, protocol="mDNS")
        question.set("ID", int(intermediary.get("transaction", 0)), type_name="Integer")
        question.set("Flags", 0, type_name="Integer")
        question.set("QDCount", 1, type_name="Integer")
        question.set(
            "DomainName",
            _service_type_to_dns(str(intermediary.get("service", ""))),
            type_name="FQDN",
        )
        question.set("QType", 16, type_name="Integer")
        question.set("QClass", 1, type_name="Integer")
        return self._dns_composer.compose(question)

    def intermediary_to_slp_reply(self, intermediary: Dict[str, object]) -> bytes:
        reply = AbstractMessage(SLP_SRVREPLY, protocol="SLP")
        reply.set("XID", int(intermediary.get("transaction", 0)), type_name="Integer")
        reply.set("LangTag", "en", type_name="String")
        reply.set("ErrorCode", 0, type_name="Integer")
        reply.set("URLCount", 1, type_name="Integer")
        reply.set("Lifetime", 65535, type_name="Integer")
        reply.set("URLEntry", str(intermediary.get("url", "")), type_name="String")
        return self._slp_composer.compose(reply)

    # -- end to end -------------------------------------------------------
    def translate_request(self, slp_request: bytes) -> bytes:
        return self.intermediary_to_dns_question(self.request_to_intermediary(slp_request))

    def translate_response(self, dns_response: bytes, xid: int, lang: str = "en") -> bytes:
        intermediary = self.response_to_intermediary(dns_response)
        intermediary["transaction"] = xid
        return self.intermediary_to_slp_reply(intermediary)

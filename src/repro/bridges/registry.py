"""Bridge registry: pick the right merged automaton for a protocol pair.

The paper's vision is that when two systems with unknown protocols want to
interact, the framework selects (or generates) the interoperability logic
for that particular pair at runtime.  The registry is the selection half of
that story: given the client-side and service-side protocol names it
returns a freshly built :class:`~repro.core.engine.bridge.StarlinkBridge`.
New pairs can be registered at runtime, so the mechanism is open to
protocols beyond the three of the case study.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..core.engine.bridge import StarlinkBridge
from ..core.errors import ConfigurationError
from .specs import (
    bonjour_to_slp_bridge,
    bonjour_to_upnp_bridge,
    slp_to_bonjour_bridge,
    slp_to_upnp_bridge,
    upnp_to_bonjour_bridge,
    upnp_to_slp_bridge,
)

__all__ = ["BridgeRegistry", "default_registry"]

BridgeBuilder = Callable[..., StarlinkBridge]


class BridgeRegistry:
    """Maps ``(client protocol, service protocol)`` pairs to bridge builders."""

    def __init__(self) -> None:
        self._builders: Dict[Tuple[str, str], BridgeBuilder] = {}

    @staticmethod
    def _normalise(protocol: str) -> str:
        return protocol.strip().lower()

    def register(self, client: str, service: str, builder: BridgeBuilder) -> None:
        self._builders[(self._normalise(client), self._normalise(service))] = builder

    def supports(self, client: str, service: str) -> bool:
        return (self._normalise(client), self._normalise(service)) in self._builders

    def pairs(self) -> List[Tuple[str, str]]:
        return sorted(self._builders)

    def build(self, client: str, service: str, **kwargs: object) -> StarlinkBridge:
        """Instantiate the bridge connecting ``client`` to ``service``."""
        key = (self._normalise(client), self._normalise(service))
        try:
            builder = self._builders[key]
        except KeyError:
            raise ConfigurationError(
                f"no bridge registered for client protocol '{client}' and "
                f"service protocol '{service}'"
            ) from None
        return builder(**kwargs)

    def register_defaults(self) -> "BridgeRegistry":
        self.register("slp", "upnp", slp_to_upnp_bridge)
        self.register("slp", "bonjour", slp_to_bonjour_bridge)
        self.register("upnp", "slp", upnp_to_slp_bridge)
        self.register("upnp", "bonjour", upnp_to_bonjour_bridge)
        self.register("bonjour", "upnp", bonjour_to_upnp_bridge)
        self.register("bonjour", "slp", bonjour_to_slp_bridge)
        return self


def default_registry() -> BridgeRegistry:
    """Registry pre-populated with the paper's six discovery cases."""
    return BridgeRegistry().register_defaults()

"""The paper's six discovery bridges, a runtime registry and ablation baselines."""

from .baseline import EsbStyleSlpToBonjourBridge, HandCodedSlpToBonjourBridge
from .registry import BridgeRegistry, default_registry
from .specs import (
    BRIDGE_BUILDERS,
    CASE_NAMES,
    bonjour_to_slp_bridge,
    bonjour_to_upnp_bridge,
    slp_to_bonjour_bridge,
    slp_to_upnp_bridge,
    upnp_to_bonjour_bridge,
    upnp_to_slp_bridge,
)

__all__ = [
    "slp_to_upnp_bridge",
    "slp_to_bonjour_bridge",
    "upnp_to_slp_bridge",
    "upnp_to_bonjour_bridge",
    "bonjour_to_upnp_bridge",
    "bonjour_to_slp_bridge",
    "BRIDGE_BUILDERS",
    "CASE_NAMES",
    "BridgeRegistry",
    "default_registry",
    "HandCodedSlpToBonjourBridge",
    "EsbStyleSlpToBonjourBridge",
]

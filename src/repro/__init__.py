"""Starlink reproduction: runtime interoperability between heterogeneous middleware protocols.

A Python reproduction of *Starlink: runtime interoperability between
heterogeneous middleware protocols* (Bromberg, Grace, Réveillère — ICDCS
2011).  The package provides:

* ``repro.core`` — abstract messages, the Message Description Language with
  generic runtime parsers/composers, k-coloured and merged automata,
  translation logic, and the automata/bridge engines;
* ``repro.network`` — the network engine abstraction with a deterministic
  discrete-event simulation and a loopback socket implementation;
* ``repro.protocols`` — the discovery protocol substrates (SLP, SSDP, HTTP,
  mDNS/Bonjour, UPnP) plus simulated legacy endpoints;
* ``repro.bridges`` — the six case-study bridges, a runtime registry and the
  hand-coded / ESB ablation baselines;
* ``repro.runtime`` — the sharded runtime: consistent-hash partitioning of
  sessions across parallel worker engines behind a shard router;
* ``repro.evaluation`` — the harness regenerating the paper's Fig. 12 tables
  plus the concurrency and sharding scaling sweeps.

Quickstart::

    from repro.bridges import slp_to_bonjour_bridge
    from repro.network import SimulatedNetwork
    from repro.protocols.mdns import BonjourResponder
    from repro.protocols.slp import SLPUserAgent

    network = SimulatedNetwork()
    bridge = slp_to_bonjour_bridge()
    bridge.deploy(network)
    network.attach(BonjourResponder())
    client = SLPUserAgent()
    network.attach(client)
    result = client.lookup(network, "service:test")
    print(result.url)
"""

from .core.engine.bridge import StarlinkBridge
from .core.message import AbstractMessage, PrimitiveField, StructuredField
from .network.simulated import SimulatedNetwork
from .runtime import ShardedRuntime

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "StarlinkBridge",
    "AbstractMessage",
    "PrimitiveField",
    "StructuredField",
    "SimulatedNetwork",
    "ShardedRuntime",
]

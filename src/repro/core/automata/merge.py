"""Merged automata: chaining coloured automata with δ-transitions.

Section III-C: two coloured automata are *mergeable* when δ-transitions can
be drawn between them — from a state of the first where the received
history is semantically equivalent to the output message required in the
initial state of the second (constraint 2), and back from a final state of
the second to a sending state of the first (constraint 3).  n automata are
*weakly merged* when their δ-transitions chain them along a directed path
that starts and ends in the same automaton (constraint 4) — Fig. 4's
SLP/SSDP/HTTP example.

δ-transitions carry a sequence ``{λ}`` of network-layer actions, such as
``set_host(ip, port)`` which points the next TCP connection at the host
discovered inside a previously received message.

A :class:`MergedAutomaton` is itself a ``{k1..kn}``-coloured automaton: its
states are the union of the component automata's states, with the extra
δ-transition relation and the attached translation logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import MergeError, NotMergeableError
from ..translation.logic import MessageFieldRef, TranslationLogic
from .color import NetworkColor
from .colored import Action, ColoredAutomaton, State, Transition
from .semantics import SemanticEquivalence

__all__ = [
    "LambdaAction",
    "DeltaTransition",
    "MergedAutomaton",
    "check_mergeable",
    "derive_equivalence",
]


@dataclass(frozen=True)
class LambdaAction:
    """One network-layer action ``λ`` attached to a δ-transition.

    ``name`` identifies the action (the paper's keyword operator, e.g.
    ``set_host``); ``arguments`` reference fields of previously received
    messages whose values parameterise the action.
    """

    name: str
    arguments: Tuple[MessageFieldRef, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class DeltaTransition:
    """A δ-transition between states of two *different* automata."""

    source_automaton: str
    source_state: str
    target_automaton: str
    target_state: str
    actions: Tuple[LambdaAction, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        actions = ",".join(str(action) for action in self.actions)
        label = f"δ{{{actions}}}" if actions else "δ"
        return (
            f"{self.source_automaton}.{self.source_state} --{label}--> "
            f"{self.target_automaton}.{self.target_state}"
        )


class MergedAutomaton:
    """A {k1..kn}-coloured automaton built from component coloured automata."""

    def __init__(
        self,
        name: str,
        automata: Sequence[ColoredAutomaton],
        translation: Optional[TranslationLogic] = None,
        initial_automaton: Optional[str] = None,
    ) -> None:
        if not automata:
            raise MergeError("a merged automaton needs at least one component automaton")
        self.name = name
        self._automata: Dict[str, ColoredAutomaton] = {}
        for automaton in automata:
            if automaton.name in self._automata:
                raise MergeError(f"duplicate automaton name '{automaton.name}'")
            self._automata[automaton.name] = automaton
        self._deltas: List[DeltaTransition] = []
        self.translation = translation if translation is not None else TranslationLogic()
        #: Name of the automaton whose initial state is the merged q0
        #: (the client-facing protocol).
        self._initial_automaton = initial_automaton or automata[0].name
        if self._initial_automaton not in self._automata:
            raise MergeError(
                f"initial automaton '{self._initial_automaton}' is not a component"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_delta(
        self,
        source: str,
        target: str,
        actions: Sequence[LambdaAction] = (),
    ) -> DeltaTransition:
        """Add a δ-transition between ``"Automaton.state"`` references."""
        source_automaton, source_state = self._split(source)
        target_automaton, target_state = self._split(target)
        if source_automaton == target_automaton:
            raise MergeError(
                "delta-transitions connect states of *different* automata; "
                f"got {source} -> {target}"
            )
        self._require_state(source_automaton, source_state)
        self._require_state(target_automaton, target_state)
        delta = DeltaTransition(
            source_automaton, source_state, target_automaton, target_state, tuple(actions)
        )
        self._deltas.append(delta)
        return delta

    def _split(self, reference: str) -> Tuple[str, str]:
        if "." not in reference:
            raise MergeError(
                f"state reference {reference!r} must be 'Automaton.state'"
            )
        automaton, _, state = reference.partition(".")
        return automaton, state

    def _require_state(self, automaton_name: str, state_name: str) -> None:
        automaton = self.automaton(automaton_name)
        if not automaton.has_state(state_name):
            raise MergeError(
                f"automaton '{automaton_name}' has no state '{state_name}'"
            )

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def automaton(self, name: str) -> ColoredAutomaton:
        try:
            return self._automata[name]
        except KeyError:
            raise MergeError(f"merged automaton has no component '{name}'") from None

    @property
    def automata(self) -> Dict[str, ColoredAutomaton]:
        return dict(self._automata)

    @property
    def automaton_names(self) -> List[str]:
        return list(self._automata)

    @property
    def deltas(self) -> List[DeltaTransition]:
        return list(self._deltas)

    @property
    def initial_automaton(self) -> ColoredAutomaton:
        return self._automata[self._initial_automaton]

    @property
    def initial_state(self) -> Tuple[str, str]:
        """The merged q0 as an ``(automaton, state)`` pair."""
        automaton = self.initial_automaton
        return automaton.name, automaton.initial_state

    def state(self, automaton_name: str, state_name: str) -> State:
        return self.automaton(automaton_name).state(state_name)

    def colors(self) -> Set[NetworkColor]:
        """The colour set {k1..kn} of the merged automaton."""
        colors: Set[NetworkColor] = set()
        for automaton in self._automata.values():
            colors.update(automaton.colors())
        return colors

    def deltas_from(self, automaton_name: str, state_name: str) -> List[DeltaTransition]:
        return [
            delta
            for delta in self._deltas
            if delta.source_automaton == automaton_name and delta.source_state == state_name
        ]

    def messages(self) -> List[str]:
        seen: List[str] = []
        for automaton in self._automata.values():
            for name in automaton.messages():
                if name not in seen:
                    seen.append(name)
        return seen

    # ------------------------------------------------------------------
    # merge-constraint validation
    # ------------------------------------------------------------------
    @property
    def is_weakly_merged(self) -> bool:
        """Constraint (4): δ-transitions chain the automata along a directed
        path that starts and ends in the initial automaton."""
        if not self._deltas:
            return len(self._automata) == 1
        start = self._initial_automaton
        # Follow delta transitions as edges between automata.
        edges: Dict[str, Set[str]] = {}
        for delta in self._deltas:
            edges.setdefault(delta.source_automaton, set()).add(delta.target_automaton)
        visited: Set[str] = set()
        frontier = [start]
        returns_to_start = False
        while frontier:
            current = frontier.pop()
            for successor in edges.get(current, set()):
                if successor == start:
                    returns_to_start = True
                if successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        other_automata = set(self._automata) - {start}
        return returns_to_start and other_automata.issubset(visited)

    @property
    def is_strongly_merged(self) -> bool:
        """Strong merge: every pair of component automata is pairwise mergeable
        (i.e. directly connected by δ-transitions in both directions)."""
        names = list(self._automata)
        for i, left in enumerate(names):
            for right in names[i + 1 :]:
                forward = any(
                    d.source_automaton == left and d.target_automaton == right
                    for d in self._deltas
                )
                backward = any(
                    d.source_automaton == right and d.target_automaton == left
                    for d in self._deltas
                )
                if not (forward and backward):
                    return False
        return bool(names)

    def validate(self, equivalence: Optional[SemanticEquivalence] = None) -> None:
        """Check structural well-formedness and (optionally) merge constraints.

        With an equivalence relation the δ-transitions are checked against
        constraints (2) and (3): the message sent right after entering the
        target automaton must be semantically supported by what the source
        automaton has received so far.
        """
        for automaton in self._automata.values():
            automaton.validate()
        if not self.is_weakly_merged:
            raise NotMergeableError(
                f"merged automaton {self.name} is not weakly merged: delta-transitions "
                "do not chain the component automata back to the initial automaton"
            )
        if equivalence is None:
            equivalence = derive_equivalence(self.translation)
        for delta in self._deltas:
            self._check_delta(delta, equivalence)

    def _check_delta(self, delta: DeltaTransition, equivalence: SemanticEquivalence) -> None:
        target_automaton = self.automaton(delta.target_automaton)
        # The message(s) the target automaton needs to send from the state the
        # delta lands on.
        outgoing = target_automaton.transitions_from(delta.target_state, Action.SEND)
        if not outgoing:
            # Landing on a receive or final state needs no semantic justification.
            return
        received = self._received_before(delta)
        for transition in outgoing:
            if not equivalence.holds_for_names(transition.message, received):
                raise NotMergeableError(
                    f"delta-transition {delta} is not justified: message "
                    f"'{transition.message}' is not semantically equivalent to the "
                    f"received history {received!r}"
                )

    def _received_before(self, delta: DeltaTransition) -> List[str]:
        """Message names received anywhere before crossing ``delta``.

        The paper's constraints use the received history of the source
        automaton (``s0 ?⇒ si``); for chained merges (Fig. 4) messages
        received by *earlier* automata in the chain are also available to
        the translation logic, so they are included.
        """
        received: List[str] = []
        source = self.automaton(delta.source_automaton)
        received.extend(
            source.received_message_names(source.initial_state, delta.source_state)
        )
        for earlier_delta in self._deltas:
            if earlier_delta is delta:
                continue
            earlier = self.automaton(earlier_delta.source_automaton)
            received.extend(
                earlier.received_message_names(
                    earlier.initial_state, earlier_delta.source_state
                )
            )
        # Deduplicate, preserving order.
        seen: List[str] = []
        for name in received:
            if name not in seen:
                seen.append(name)
        return seen

    # ------------------------------------------------------------------
    # execution support
    # ------------------------------------------------------------------
    def reset(self) -> None:
        for automaton in self._automata.values():
            automaton.reset()

    def find_automaton_of_state(self, state_name: str) -> Optional[str]:
        for name, automaton in self._automata.items():
            if automaton.has_state(state_name):
                return name
        return None

    def __repr__(self) -> str:
        return (
            f"MergedAutomaton({self.name!r}, automata={self.automaton_names}, "
            f"deltas={len(self._deltas)})"
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def derive_equivalence(
    translation: TranslationLogic,
    mandatory_fields: Optional[Mapping[str, Sequence[str]]] = None,
) -> SemanticEquivalence:
    """Build the ``|=`` relation implied by a translation logic.

    Message equivalences come from the logic's declarations (Fig. 5 lines
    1-3); field correspondences come from its assignments (lines 4-9).
    """
    from .semantics import FieldCorrespondence

    equivalence = SemanticEquivalence(
        message_pairs=translation.equivalences, mandatory_fields=mandatory_fields
    )
    for assignment in translation.assignments:
        equivalence.add_correspondence(
            FieldCorrespondence(
                target_message=assignment.target.message,
                target_field=assignment.target.field,
                source_message=assignment.source.message,
                source_field=assignment.source.field,
            )
        )
    return equivalence


def check_mergeable(
    first: ColoredAutomaton,
    second: ColoredAutomaton,
    equivalence: SemanticEquivalence,
) -> Tuple[bool, List[Tuple[str, str]]]:
    """Decide whether two coloured automata are mergeable (``A1 ⊗ A2``).

    Implements constraints (2) and (3) at the model level: a forward
    δ-transition is possible from a state of ``first`` reached by receive
    transitions whose history semantically supports the first message sent
    from ``second``'s initial state; a backward δ-transition is possible
    from a final (or reply-complete) state of ``second`` to a state of
    ``first`` that still has to send, with the second automaton's received
    history supporting that outgoing message.

    Returns ``(mergeable, delta_candidates)`` where the candidates are
    ``(source "A.state", target "A.state")`` pairs.
    """
    candidates: List[Tuple[str, str]] = []

    # Constraint (2): forward delta from first into second's initial state.
    initial_sends = second.transitions_from(second.initial_state, Action.SEND)
    for state_name in first.states:
        received = first.received_message_names(first.initial_state, state_name)
        if not received:
            continue
        for transition in initial_sends:
            if equivalence.holds_for_names(transition.message, received):
                candidates.append(
                    (f"{first.name}.{state_name}", f"{second.name}.{second.initial_state}")
                )
                break

    forward = bool(candidates)

    # Constraint (3): backward delta from a state of second where the reply
    # has been received, to a state of first that still sends a message.  The
    # outgoing message may also draw on fields the *first* automaton received
    # earlier (e.g. SLP_SrvReply.XID copied from the original SLP_SrvReq), so
    # that history is available to the check too — exactly as the translation
    # logic of Fig. 5 uses it.
    backward = False
    final_states = second.accepting_states or [
        name for name in second.states if not second.transitions_from(name)
    ]
    for final_state in final_states:
        received = second.received_message_names(second.initial_state, final_state)
        if not received:
            continue
        for state_name in first.states:
            available = received + first.received_message_names(
                first.initial_state, state_name
            )
            sends = first.transitions_from(state_name, Action.SEND)
            for transition in sends:
                if equivalence.holds_for_names(transition.message, available):
                    candidates.append(
                        (f"{second.name}.{final_state}", f"{first.name}.{state_name}")
                    )
                    backward = True
                    break

    return forward and backward, candidates

"""Automatic synthesis of merged automata (the paper's future-work direction).

Section VII of the paper: *"At present, the merged automata with the
corresponding translation logic is modelled by a developer; however, in
order for it to be a true runtime solution this model should be generated
by the framework itself."*  This module implements the simplest useful
version of that idea for request/response protocols:

Given two coloured automata — the client-facing protocol and the
service-facing protocol — plus the *semantic knowledge* that ontology or
learning techniques would provide (declared message equivalences and field
correspondences, see :class:`~repro.core.automata.semantics.SemanticEquivalence`),
:func:`synthesize_merge`:

1. finds the candidate δ-transition sites with
   :func:`~repro.core.automata.merge.check_mergeable` (constraints 2 and 3
   of the paper),
2. chooses the earliest forward site and the final backward site so the
   resulting chain starts and ends in the client-facing automaton (the
   weak-merge shape of constraint 4), and
3. derives the translation logic directly from the field correspondences.

The result is a ready-to-validate :class:`MergedAutomaton`; the case-study
test shows it coincides with the hand-modelled Fig. 10 bridge.  What it
does *not* attempt is inferring the correspondences themselves — that is
exactly the ontology/learning integration the paper leaves open.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import NotMergeableError
from ..translation.logic import Assignment, MessageFieldRef, TranslationLogic
from .colored import ColoredAutomaton
from .merge import MergedAutomaton, check_mergeable
from .semantics import SemanticEquivalence

__all__ = ["synthesize_merge", "translation_from_equivalence"]


def translation_from_equivalence(equivalence: SemanticEquivalence) -> TranslationLogic:
    """Derive translation logic from an equivalence relation.

    Every declared message pair becomes an equivalence of the logic and
    every field correspondence becomes a plain-copy assignment (translation
    functions, if needed, can be attached afterwards by the model author).
    This is the inverse of :func:`~repro.core.automata.merge.derive_equivalence`.
    """
    translation = TranslationLogic()
    for left, right in equivalence.message_pairs:
        translation.declare_equivalent(left, right)
    for correspondence in equivalence.correspondences:
        translation.add_assignment(
            Assignment(
                target=MessageFieldRef(correspondence.target_message, correspondence.target_field),
                source=MessageFieldRef(correspondence.source_message, correspondence.source_field),
            )
        )
    return translation


def _split(reference: str) -> Tuple[str, str]:
    automaton, _, state = reference.partition(".")
    return automaton, state


def synthesize_merge(
    client_side: ColoredAutomaton,
    service_side: ColoredAutomaton,
    equivalence: SemanticEquivalence,
    name: Optional[str] = None,
    translation: Optional[TranslationLogic] = None,
) -> MergedAutomaton:
    """Generate a merged automaton for a client/service protocol pair.

    ``client_side`` is the automaton facing the legacy client (it starts by
    receiving); ``service_side`` faces the legacy service (it starts by
    sending).  ``equivalence`` supplies the message equivalences and field
    correspondences; ``translation`` overrides the automatically derived
    translation logic when the model author wants to add translation
    functions.

    Raises :class:`NotMergeableError` when the constraints of Section III-C
    cannot be satisfied for this pair.
    """
    mergeable, candidates = check_mergeable(client_side, service_side, equivalence)
    if not mergeable:
        raise NotMergeableError(
            f"automata {client_side.name} and {service_side.name} are not mergeable "
            "under the supplied semantic equivalence"
        )

    forward = [
        (source, target)
        for source, target in candidates
        if _split(source)[0] == client_side.name and _split(target)[0] == service_side.name
    ]
    backward = [
        (source, target)
        for source, target in candidates
        if _split(source)[0] == service_side.name and _split(target)[0] == client_side.name
    ]
    if not forward or not backward:
        raise NotMergeableError(
            f"no delta-transition chain returns to {client_side.name}; "
            "the pair is only one-way mergeable"
        )

    merged = MergedAutomaton(
        name or f"{client_side.name.lower()}-to-{service_side.name.lower()}",
        [client_side, service_side],
        translation if translation is not None else translation_from_equivalence(equivalence),
        initial_automaton=client_side.name,
    )
    # Earliest forward site: the first state (in path order from the initial
    # state) at which the service-side request is already supported.
    forward.sort(key=lambda pair: _path_length(client_side, _split(pair[0])[1]))
    merged.add_delta(*forward[0])
    # Final backward site: return from the service side's accepting state to
    # the client-side state that still has the reply to send.
    backward.sort(key=lambda pair: _path_length(client_side, _split(pair[1])[1]), reverse=True)
    merged.add_delta(*backward[0])
    return merged


def _path_length(automaton: ColoredAutomaton, state_name: str) -> int:
    path = automaton.path(automaton.initial_state, state_name)
    return len(path) if path is not None else 1_000_000

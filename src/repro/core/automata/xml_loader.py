"""XML form of coloured automata.

The Starlink prototype loads behaviour models from XML content
(Section IV-B).  This module defines the XML document shape for a
k-coloured automaton so that protocol behaviour can be distributed as data
files, mirroring the paper's Figs. 1-3 and 9::

    <ColoredAutomaton name="SLP" protocol="SLP">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>427</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.255.255.253</group>
      </Color>
      <State name="s10" initial="true"/>
      <State name="s11" accepting="true"/>
      <Transition source="s10" action="?" message="SLP_SrvReq" target="s11"/>
      <Transition source="s11" action="!" message="SLP_SrvReply" target="s10"/>
    </ColoredAutomaton>

A ``<State>`` may carry its own ``<Color>`` child to override the automaton
default (needed only for multi-colour automata, which single protocols never
are).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Union

from ..errors import AutomatonError
from .color import NetworkColor
from .colored import Action, ColoredAutomaton

__all__ = ["load_automaton", "loads_automaton", "dump_automaton", "dumps_automaton"]


def loads_automaton(document: str) -> ColoredAutomaton:
    """Parse a coloured automaton from an XML string."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise AutomatonError(f"malformed automaton XML: {exc}") from exc
    return _from_element(root)


def load_automaton(path: Union[str, "os.PathLike[str]"]) -> ColoredAutomaton:  # noqa: F821
    with open(path, "r", encoding="utf-8") as handle:
        return loads_automaton(handle.read())


def dumps_automaton(automaton: ColoredAutomaton) -> str:
    """Serialise a coloured automaton to an XML string."""
    root = _to_element(automaton)
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def dump_automaton(
    automaton: ColoredAutomaton, path: Union[str, "os.PathLike[str]"]
) -> None:  # noqa: F821
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_automaton(automaton))


# ----------------------------------------------------------------------
def _color_from_element(element: ET.Element) -> NetworkColor:
    attributes = {child.tag: (child.text or "").strip() for child in element}
    return NetworkColor(attributes)


def _color_to_element(color: NetworkColor, tag: str = "Color") -> ET.Element:
    element = ET.Element(tag)
    for key, value in color.key:
        child = ET.SubElement(element, key)
        child.text = value
    return element


def _from_element(root: ET.Element) -> ColoredAutomaton:
    if root.tag != "ColoredAutomaton":
        raise AutomatonError(
            f"expected <ColoredAutomaton> root element, got <{root.tag}>"
        )
    name = root.get("name", "")
    if not name:
        raise AutomatonError("<ColoredAutomaton> needs a name attribute")
    automaton = ColoredAutomaton(name, protocol=root.get("protocol", name))

    default_color: Optional[NetworkColor] = None
    color_element = root.find("Color")
    if color_element is not None:
        default_color = _color_from_element(color_element)

    for state_element in root.findall("State"):
        state_name = state_element.get("name", "")
        if not state_name:
            raise AutomatonError("every <State> needs a name attribute")
        state_color_element = state_element.find("Color")
        if state_color_element is not None:
            color = _color_from_element(state_color_element)
        elif default_color is not None:
            color = default_color
        else:
            raise AutomatonError(
                f"state '{state_name}' has no colour and the automaton declares no default"
            )
        automaton.add_state(
            state_name,
            color,
            initial=state_element.get("initial", "false").lower() == "true",
            accepting=state_element.get("accepting", "false").lower() == "true",
        )

    for transition_element in root.findall("Transition"):
        action_text = transition_element.get("action", "")
        try:
            action = Action(action_text)
        except ValueError:
            raise AutomatonError(
                f"transition action must be '?' or '!', got {action_text!r}"
            ) from None
        automaton.add_transition(
            transition_element.get("source", ""),
            action,
            transition_element.get("message", ""),
            transition_element.get("target", ""),
        )
    return automaton


def _to_element(automaton: ColoredAutomaton) -> ET.Element:
    root = ET.Element(
        "ColoredAutomaton", {"name": automaton.name, "protocol": automaton.protocol}
    )
    colors = automaton.colors()
    default_color = next(iter(colors)) if len(colors) == 1 else None
    if default_color is not None:
        root.append(_color_to_element(default_color))
    initial = automaton.initial_state
    for state_name, state in automaton.states.items():
        attributes = {"name": state_name}
        if state_name == initial:
            attributes["initial"] = "true"
        if state.accepting:
            attributes["accepting"] = "true"
        state_element = ET.SubElement(root, "State", attributes)
        if default_color is None or state.color != default_color:
            state_element.append(_color_to_element(state.color))
    for transition in automaton.transitions:
        ET.SubElement(
            root,
            "Transition",
            {
                "source": transition.source,
                "action": transition.action.value,
                "message": transition.message,
                "target": transition.target,
            },
        )
    return root


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad

"""The semantic-equivalence operator ``|=`` of Section III-C.

The paper defines ``n |= m⃗``: an outgoing message ``n`` is semantically
equivalent to a sequence of received messages ``m⃗`` iff *every mandatory
field of n* has a semantically equivalent field in one of the messages of
``m⃗`` (equation 1).  This is the prerequisite that justifies a δ-transition
between two coloured automata.

The relation needs two ingredients supplied by the interoperability model:

* **message equivalences** — which message kinds may stand in for one
  another (Fig. 5 lines 1-3: ``SSDP_M-Search |= SLP_SrvReq`` ...);
* **field correspondences** — which field of which message provides the
  content of a mandatory field (these are exactly the assignments of the
  translation logic, Fig. 5 lines 4-9, so a
  :class:`SemanticEquivalence` can be derived from a
  :class:`~repro.core.translation.logic.TranslationLogic`).

The operator is usable both at *model* level (message names and field
labels, used when checking mergeability before deployment) and at
*instance* level (actual :class:`~repro.core.message.AbstractMessage`
objects stored in state queues, used by the engine at runtime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..message import AbstractMessage

__all__ = ["FieldCorrespondence", "SemanticEquivalence"]


@dataclass(frozen=True)
class FieldCorrespondence:
    """States that ``target_message.target_field`` can be filled from
    ``source_message.source_field`` (possibly through a translation
    function — the function itself lives in the translation logic; here we
    only care that a correspondence exists)."""

    target_message: str
    target_field: str
    source_message: str
    source_field: str


class SemanticEquivalence:
    """The ``|=`` relation over messages and fields."""

    def __init__(
        self,
        message_pairs: Optional[Iterable[Tuple[str, str]]] = None,
        correspondences: Optional[Iterable[FieldCorrespondence]] = None,
        mandatory_fields: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        #: Unordered message-kind equivalences (``SSDP_M-Search |= SLP_SrvReq``).
        self._message_pairs: Set[frozenset] = set()
        for left, right in message_pairs or []:
            self._message_pairs.add(frozenset((left, right)))
        self._correspondences: List[FieldCorrespondence] = list(correspondences or [])
        #: Mandatory field labels per message kind (``Mfields`` in the paper),
        #: typically taken from the MDL message specifications.
        self._mandatory: Dict[str, List[str]] = {
            name: list(labels) for name, labels in (mandatory_fields or {}).items()
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def declare_equivalent(self, left: str, right: str) -> "SemanticEquivalence":
        self._message_pairs.add(frozenset((left, right)))
        return self

    def add_correspondence(self, correspondence: FieldCorrespondence) -> "SemanticEquivalence":
        self._correspondences.append(correspondence)
        return self

    def set_mandatory_fields(self, message: str, labels: Sequence[str]) -> "SemanticEquivalence":
        self._mandatory[message] = list(labels)
        return self

    @property
    def correspondences(self) -> List[FieldCorrespondence]:
        return list(self._correspondences)

    @property
    def message_pairs(self) -> List[Tuple[str, str]]:
        return [tuple(sorted(pair)) for pair in sorted(self._message_pairs, key=sorted)]

    # ------------------------------------------------------------------
    # message-level relation
    # ------------------------------------------------------------------
    def messages_equivalent(self, left: str, right: str) -> bool:
        """True when the two message kinds were declared equivalent."""
        if left == right:
            return True
        return frozenset((left, right)) in self._message_pairs

    def mandatory_fields(self, message: str) -> List[str]:
        """``Mfields(message)``: declared mandatory fields, possibly empty."""
        return list(self._mandatory.get(message, []))

    # ------------------------------------------------------------------
    # the |= operator, model level
    # ------------------------------------------------------------------
    def field_supported(self, target_message: str, target_field: str, sources: Sequence[str]) -> bool:
        """True when some source message kind can supply ``target_field``.

        Support comes either from an explicit field correspondence whose
        source message is in ``sources``, or — mirroring the common-label
        fallback used when protocols share vocabulary — from a source
        message declared equivalent to the target carrying a field of the
        same label (only checkable at instance level; at model level we
        accept declared correspondences only).
        """
        for correspondence in self._correspondences:
            if (
                correspondence.target_message == target_message
                and correspondence.target_field == target_field
                and correspondence.source_message in sources
            ):
                return True
        # A field may also be filled from the *target protocol's own* prior
        # messages (e.g. SLP_SrvReply.XID copied from SLP_SrvReq.XID); such
        # self-correspondences are declared too, so nothing more to do here.
        return False

    def holds_for_names(
        self,
        target_message: str,
        received_messages: Sequence[str],
        target_mandatory: Optional[Sequence[str]] = None,
    ) -> bool:
        """Model-level ``n |= m⃗`` over message *names*.

        ``target_mandatory`` overrides the registered mandatory fields of
        the target message (useful when the MDL is not loaded).
        """
        mandatory = list(target_mandatory) if target_mandatory is not None else self.mandatory_fields(target_message)
        if not mandatory:
            # With no mandatory fields the condition is vacuously true, but
            # the paper still requires the messages be *semantically* related:
            # at least one declared equivalence with a received message.
            return any(
                self.messages_equivalent(target_message, received)
                for received in received_messages
            )
        return all(
            self.field_supported(target_message, field_label, received_messages)
            for field_label in mandatory
        )

    # ------------------------------------------------------------------
    # the |= operator, instance level
    # ------------------------------------------------------------------
    def holds(
        self,
        target: AbstractMessage,
        received: Sequence[AbstractMessage],
    ) -> bool:
        """Instance-level ``n |= m⃗`` over abstract-message instances.

        Every mandatory field of ``target`` must be obtainable from one of
        the ``received`` instances, either through a declared field
        correspondence or by carrying a field with the same label.
        """
        received_names = [msg.name for msg in received]
        for field_label in target.mandatory_fields:
            if self.field_supported(target.name, field_label, received_names):
                continue
            if any(msg.has(field_label) for msg in received):
                continue
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"SemanticEquivalence(pairs={len(self._message_pairs)}, "
            f"correspondences={len(self._correspondences)})"
        )

"""k-coloured automata, semantic equivalence and merged automata."""

from .color import NetworkColor
from .colored import Action, ColoredAutomaton, State, Transition
from .merge import (
    DeltaTransition,
    LambdaAction,
    MergedAutomaton,
    check_mergeable,
    derive_equivalence,
)
from .semantics import FieldCorrespondence, SemanticEquivalence
from .synthesis import synthesize_merge, translation_from_equivalence
from .xml_loader import dump_automaton, dumps_automaton, load_automaton, loads_automaton

__all__ = [
    "NetworkColor",
    "Action",
    "State",
    "Transition",
    "ColoredAutomaton",
    "SemanticEquivalence",
    "FieldCorrespondence",
    "LambdaAction",
    "DeltaTransition",
    "MergedAutomaton",
    "check_mergeable",
    "derive_equivalence",
    "synthesize_merge",
    "translation_from_equivalence",
    "load_automaton",
    "loads_automaton",
    "dump_automaton",
    "dumps_automaton",
]

"""Network colours for k-coloured automata.

Section III-B: protocols differ not only in behaviour but in how they use
the network — transport protocol, port, unicast vs. multicast, synchronous
vs. asynchronous responses.  Starlink captures these low-level semantics by
*colouring* automaton states: a colour is the image, under a perfect hash
function ``f``, of the list of key/value pairs describing the network
details.  Two states with the same colour can be connected by ordinary
send/receive transitions; crossing colours requires a δ-transition.

Here a :class:`NetworkColor` is an immutable mapping of those key/value
pairs.  The "perfect hash" of the paper is realised by using the canonical
sorted tuple of pairs itself as the colour key — trivially collision-free —
while :attr:`NetworkColor.value` additionally exposes a short stable
hexadecimal digest for display, as in the paper's ``k`` notation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["NetworkColor"]

#: Attribute names used by the paper's examples (Figs. 1-3 and 9).
TRANSPORT = "transport_protocol"
PORT = "port"
MODE = "mode"
MULTICAST = "multicast"
GROUP = "group"


class NetworkColor(Mapping[str, str]):
    """An immutable set of network attributes identifying one colour ``k``."""

    def __init__(self, attributes: Optional[Mapping[str, object]] = None, **kwargs: object) -> None:
        merged: Dict[str, str] = {}
        for source in (attributes or {}), kwargs:
            for key, value in source.items():
                merged[str(key)] = str(value)
        if not merged:
            raise ConfigurationError("a network colour needs at least one attribute")
        self._attributes: Tuple[Tuple[str, str], ...] = tuple(sorted(merged.items()))

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def udp_multicast(cls, group: str, port: int, mode: str = "async") -> "NetworkColor":
        """Colour of a multicast UDP protocol such as SLP, SSDP or mDNS."""
        return cls(
            {
                TRANSPORT: "udp",
                PORT: port,
                MODE: mode,
                MULTICAST: "yes",
                GROUP: group,
            }
        )

    @classmethod
    def tcp_unicast(cls, port: int, mode: str = "sync") -> "NetworkColor":
        """Colour of a unicast TCP protocol such as HTTP."""
        return cls(
            {
                TRANSPORT: "tcp",
                PORT: port,
                MODE: mode,
                MULTICAST: "no",
            }
        )

    @classmethod
    def udp_unicast(cls, port: int, mode: str = "async") -> "NetworkColor":
        """Colour of a unicast UDP protocol."""
        return cls(
            {
                TRANSPORT: "udp",
                PORT: port,
                MODE: mode,
                MULTICAST: "no",
            }
        )

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> str:
        for existing_key, value in self._attributes:
            if existing_key == key:
                return value
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter(key for key, _ in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    # ------------------------------------------------------------------
    # colour identity
    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[Tuple[str, str], ...]:
        """The canonical, collision-free colour key (the paper's ``k``)."""
        return self._attributes

    @property
    def value(self) -> str:
        """A short stable digest of the colour key, for display/logging."""
        digest = hashlib.sha1(repr(self._attributes).encode("utf-8")).hexdigest()
        return digest[:8]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NetworkColor):
            return self._attributes == other._attributes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value}" for key, value in self._attributes)
        return f"NetworkColor({inner})"

    # ------------------------------------------------------------------
    # network attribute helpers
    # ------------------------------------------------------------------
    @property
    def transport(self) -> str:
        return self.get(TRANSPORT, "udp")

    @property
    def port(self) -> int:
        try:
            return int(self.get(PORT, "0"))
        except ValueError:
            return 0

    @property
    def mode(self) -> str:
        return self.get(MODE, "async")

    @property
    def is_multicast(self) -> bool:
        return self.get(MULTICAST, "no").lower() in {"yes", "true", "1"}

    @property
    def group(self) -> Optional[str]:
        return self.get(GROUP)

    @property
    def is_synchronous(self) -> bool:
        return self.mode == "sync"

    def with_attributes(self, **overrides: object) -> "NetworkColor":
        """Return a new colour with some attributes replaced."""
        attributes = dict(self._attributes)
        attributes.update({str(key): str(value) for key, value in overrides.items()})
        return NetworkColor(attributes)

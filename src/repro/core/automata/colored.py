"""k-coloured automata describing protocol behaviour.

Section III-B defines a k-coloured automaton
``Ak = (Q, M, q0, F, Act, →, ⇒)`` where ``Q`` is a finite set of states,
``M`` the abstract messages, ``q0`` the starting state, ``F`` the accepting
states, ``Act = {?, !}`` the receive/send actions, ``→`` the transition
relation and ``⇒`` the *history operator* returning the sequence of message
instances stored along a path.  Every state maintains a queue of message
instances, and every state carries a network colour; ordinary transitions
may only connect states of the same colour.

The per-state queues here are *model-level* storage used when reasoning
about automata in isolation (merge checking, synthesis, tests).  At
runtime the automata engine treats automata as read-only shared structure:
each concurrent session keeps its own per-state queues in its
:class:`~repro.core.engine.session.SessionContext`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AutomatonError, ColorMismatchError, InvalidTransitionError
from ..message import AbstractMessage
from .color import NetworkColor

__all__ = ["Action", "State", "Transition", "ColoredAutomaton"]


class Action(enum.Enum):
    """The two transition actions of the paper: receive (?) and send (!)."""

    RECEIVE = "?"
    SEND = "!"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class State:
    """One automaton state: a name, a colour, and a message-instance queue."""

    name: str
    color: NetworkColor
    accepting: bool = False
    queue: List[AbstractMessage] = field(default_factory=list)

    def store(self, message: AbstractMessage) -> None:
        """Push a message instance onto this state's queue."""
        self.queue.append(message)

    def stored(self, message_name: Optional[str] = None) -> List[AbstractMessage]:
        """Return stored instances, optionally filtered by message name."""
        if message_name is None:
            return list(self.queue)
        return [msg for msg in self.queue if msg.name == message_name]

    def latest(self, message_name: Optional[str] = None) -> Optional[AbstractMessage]:
        """Return the most recent stored instance (of ``message_name`` if given)."""
        matching = self.stored(message_name)
        return matching[-1] if matching else None

    def clear(self) -> None:
        self.queue.clear()

    def __repr__(self) -> str:
        return f"State({self.name!r}, color={self.color.value})"


@dataclass(frozen=True)
class Transition:
    """A send- or receive-transition ``s1 --act m--> s2``."""

    source: str
    action: Action
    message: str
    target: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} --{self.action.value}{self.message}--> {self.target}"


class ColoredAutomaton:
    """A k-coloured automaton for one protocol.

    The automaton is *k-coloured* in the paper's sense when every state is
    coloured; by construction that is always true here because states are
    created with a colour.  The class exposes the history operator ``⇒`` as
    :meth:`received_history` / :meth:`sent_history`.
    """

    def __init__(self, name: str, protocol: str = "") -> None:
        self.name = name
        #: The protocol whose behaviour this automaton captures (e.g. "SLP").
        self.protocol = protocol or name
        self._states: Dict[str, State] = {}
        self._transitions: List[Transition] = []
        self._initial: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(
        self,
        name: str,
        color: NetworkColor,
        initial: bool = False,
        accepting: bool = False,
    ) -> State:
        """Create and register a state; the first state added becomes initial."""
        if name in self._states:
            raise AutomatonError(f"duplicate state '{name}' in automaton {self.name}")
        state = State(name=name, color=color, accepting=accepting)
        self._states[name] = state
        if initial or self._initial is None:
            self._initial = name if initial or self._initial is None else self._initial
        if initial:
            self._initial = name
        return state

    def add_transition(
        self, source: str, action: Action, message: str, target: str
    ) -> Transition:
        """Add ``source --action message--> target``.

        Raises :class:`ColorMismatchError` when the two states do not share
        the same colour — the paper's well-formedness condition for ordinary
        (non-δ) transitions.
        """
        if source not in self._states:
            raise InvalidTransitionError(
                f"unknown source state '{source}' in automaton {self.name}"
            )
        if target not in self._states:
            raise InvalidTransitionError(
                f"unknown target state '{target}' in automaton {self.name}"
            )
        if self._states[source].color != self._states[target].color:
            raise ColorMismatchError(
                f"transition {source} -> {target} in automaton {self.name} crosses "
                "colours; only delta-transitions of a merged automaton may do that"
            )
        transition = Transition(source, action, message, target)
        self._transitions.append(transition)
        return transition

    def receive(self, source: str, message: str, target: str) -> Transition:
        """Shorthand for a receive-transition ``source --?message--> target``."""
        return self.add_transition(source, Action.RECEIVE, message, target)

    def send(self, source: str, message: str, target: str) -> Transition:
        """Shorthand for a send-transition ``source --!message--> target``."""
        return self.add_transition(source, Action.SEND, message, target)

    # ------------------------------------------------------------------
    # structure access
    # ------------------------------------------------------------------
    @property
    def initial_state(self) -> str:
        if self._initial is None:
            raise AutomatonError(f"automaton {self.name} has no states")
        return self._initial

    @property
    def states(self) -> Dict[str, State]:
        return dict(self._states)

    @property
    def accepting_states(self) -> List[str]:
        return [name for name, state in self._states.items() if state.accepting]

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions)

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise AutomatonError(
                f"automaton {self.name} has no state '{name}'"
            ) from None

    def has_state(self, name: str) -> bool:
        return name in self._states

    def transitions_from(self, state_name: str, action: Optional[Action] = None) -> List[Transition]:
        return [
            t
            for t in self._transitions
            if t.source == state_name and (action is None or t.action == action)
        ]

    def transitions_into(self, state_name: str, action: Optional[Action] = None) -> List[Transition]:
        return [
            t
            for t in self._transitions
            if t.target == state_name and (action is None or t.action == action)
        ]

    def colors(self) -> Set[NetworkColor]:
        return {state.color for state in self._states.values()}

    def single_color(self) -> NetworkColor:
        """The unique colour ``k`` of this automaton.

        Colours are inspected in state-insertion order, so the result is
        deterministic.  Raises :class:`AutomatonError` when the automaton
        has no states or carries more than one distinct colour — picking an
        arbitrary one would bind the automaton's network resources (local
        endpoint, default destination) nondeterministically.
        """
        distinct: List[NetworkColor] = []
        for state in self._states.values():
            if state.color not in distinct:
                distinct.append(state.color)
        if not distinct:
            raise AutomatonError(f"automaton {self.name} has no states, hence no colour")
        if len(distinct) > 1:
            raise AutomatonError(
                f"automaton {self.name} carries {len(distinct)} distinct colours; "
                "a single per-automaton network binding is ambiguous"
            )
        return distinct[0]

    @property
    def is_k_colored(self) -> bool:
        """True when every state carries a colour and all colours agree.

        A single protocol automaton has exactly one colour ``k``; merged
        automata have several.
        """
        return len(self.colors()) == 1

    def messages(self, action: Optional[Action] = None) -> List[str]:
        """Names of messages appearing on (optionally filtered) transitions."""
        seen: List[str] = []
        for transition in self._transitions:
            if action is not None and transition.action != action:
                continue
            if transition.message not in seen:
                seen.append(transition.message)
        return seen

    # ------------------------------------------------------------------
    # paths and the history operator
    # ------------------------------------------------------------------
    def path(self, source: str, target: str) -> Optional[List[Transition]]:
        """Return one transition path from ``source`` to ``target`` (BFS), or None."""
        if source == target:
            return []
        visited = {source}
        frontier: List[Tuple[str, List[Transition]]] = [(source, [])]
        while frontier:
            current, trail = frontier.pop(0)
            for transition in self.transitions_from(current):
                if transition.target in visited:
                    continue
                new_trail = trail + [transition]
                if transition.target == target:
                    return new_trail
                visited.add(transition.target)
                frontier.append((transition.target, new_trail))
        return None

    def _history(self, source: str, target: str, action: Action) -> List[AbstractMessage]:
        trail = self.path(source, target)
        if trail is None:
            raise AutomatonError(
                f"no path from {source} to {target} in automaton {self.name}"
            )
        history: List[AbstractMessage] = []
        for transition in trail:
            if transition.action != action:
                continue
            state = self._states[transition.source]
            history.extend(state.stored(transition.message))
        return history

    def received_history(self, source: str, target: str) -> List[AbstractMessage]:
        """The paper's ``s1 ?⇒ s2``: received instances stored along the path."""
        return self._history(source, target, Action.RECEIVE)

    def sent_history(self, source: str, target: str) -> List[AbstractMessage]:
        """The paper's ``s1 !⇒ s2``: sent instances stored along the path."""
        return self._history(source, target, Action.SEND)

    def received_message_names(self, source: str, target: str) -> List[str]:
        """Message *names* received along the path (for model-level reasoning)."""
        trail = self.path(source, target)
        if trail is None:
            return []
        return [t.message for t in trail if t.action is Action.RECEIVE]

    def sent_message_names(self, source: str, target: str) -> List[str]:
        trail = self.path(source, target)
        if trail is None:
            return []
        return [t.message for t in trail if t.action is Action.SEND]

    # ------------------------------------------------------------------
    # execution support
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear every state queue (start of a new interoperability session)."""
        for state in self._states.values():
            state.clear()

    def is_receive_state(self, state_name: str) -> bool:
        return bool(self.transitions_from(state_name, Action.RECEIVE))

    def is_send_state(self, state_name: str) -> bool:
        return bool(self.transitions_from(state_name, Action.SEND))

    def validate(self) -> None:
        """Sanity-check the automaton structure."""
        if self._initial is None:
            raise AutomatonError(f"automaton {self.name} has no initial state")
        reachable = {self._initial}
        frontier = [self._initial]
        while frontier:
            current = frontier.pop()
            for transition in self.transitions_from(current):
                if transition.target not in reachable:
                    reachable.add(transition.target)
                    frontier.append(transition.target)
        unreachable = set(self._states) - reachable
        if unreachable:
            raise AutomatonError(
                f"automaton {self.name} has unreachable states: {sorted(unreachable)}"
            )

    def __repr__(self) -> str:
        return (
            f"ColoredAutomaton({self.name!r}, states={len(self._states)}, "
            f"transitions={len(self._transitions)})"
        )

"""Message Description Language: specifications, parsers and composers.

The public surface of this subpackage:

* :class:`~repro.core.mdl.spec.MDLSpec` and its component classes describe a
  protocol's message formats;
* :func:`~repro.core.mdl.base.create_parser` /
  :func:`~repro.core.mdl.base.create_composer` instantiate the generic
  interpreters for the binary or text dialect;
* :func:`~repro.core.mdl.xml_loader.load_mdl` /
  :func:`~repro.core.mdl.xml_loader.dump_mdl` move specifications to and
  from their XML document form.
"""

from .base import MessageComposer, MessageParser, create_composer, create_parser
from .binary import BinaryMessageComposer, BinaryMessageParser
from .functions import (
    FieldFunctionContext,
    FieldFunctionRegistry,
    default_function_registry,
)
from .spec import (
    FieldFunctionSpec,
    FieldSpec,
    FieldsDirective,
    HeaderSpec,
    MDLKind,
    MDLSpec,
    MessageRule,
    MessageSpec,
    SizeKind,
    SizeSpec,
    TypeDecl,
)
from .text import TextMessageComposer, TextMessageParser
from .xml_loader import dump_mdl, dumps_mdl, load_mdl, loads_mdl

__all__ = [
    "MDLKind",
    "MDLSpec",
    "SizeKind",
    "SizeSpec",
    "FieldSpec",
    "FieldsDirective",
    "FieldFunctionSpec",
    "HeaderSpec",
    "MessageRule",
    "MessageSpec",
    "TypeDecl",
    "MessageParser",
    "MessageComposer",
    "create_parser",
    "create_composer",
    "BinaryMessageParser",
    "BinaryMessageComposer",
    "TextMessageParser",
    "TextMessageComposer",
    "FieldFunctionRegistry",
    "FieldFunctionContext",
    "default_function_registry",
    "load_mdl",
    "loads_mdl",
    "dump_mdl",
    "dumps_mdl",
]

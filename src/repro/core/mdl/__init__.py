"""Message Description Language: specifications, parsers and composers.

The public surface of this subpackage:

* :class:`~repro.core.mdl.spec.MDLSpec` and its component classes describe a
  protocol's message formats;
* :func:`~repro.core.mdl.base.create_parser` /
  :func:`~repro.core.mdl.base.create_composer` instantiate codecs for the
  binary or text dialect — compiled by default (see
  :mod:`repro.core.mdl.compiled`), interpreting with ``interpreted=True``;
* :func:`~repro.core.mdl.xml_loader.load_mdl` /
  :func:`~repro.core.mdl.xml_loader.dump_mdl` move specifications to and
  from their XML document form.
"""

from .base import MessageComposer, MessageParser, create_composer, create_parser
from .binary import BinaryMessageComposer, BinaryMessageParser
from .compiled import (
    PROBE_MATCH,
    PROBE_REJECT,
    PROBE_UNKNOWN,
    Codec,
    CompiledBinaryComposer,
    CompiledBinaryParser,
    CompiledTextComposer,
    CompiledTextParser,
    SpecDiscriminator,
    compile_composer,
    compile_parser,
    compiled_artifacts,
    discriminator_for,
)
from .functions import (
    FieldFunctionContext,
    FieldFunctionRegistry,
    default_function_registry,
)
from .spec import (
    FieldFunctionSpec,
    FieldSpec,
    FieldsDirective,
    HeaderSpec,
    MDLKind,
    MDLSpec,
    MessageRule,
    MessageSpec,
    SizeKind,
    SizeSpec,
    TypeDecl,
)
from .text import TextMessageComposer, TextMessageParser
from .xml_loader import clear_mdl_cache, dump_mdl, dumps_mdl, load_mdl, loads_mdl

__all__ = [
    "MDLKind",
    "MDLSpec",
    "SizeKind",
    "SizeSpec",
    "FieldSpec",
    "FieldsDirective",
    "FieldFunctionSpec",
    "HeaderSpec",
    "MessageRule",
    "MessageSpec",
    "TypeDecl",
    "MessageParser",
    "MessageComposer",
    "create_parser",
    "create_composer",
    "BinaryMessageParser",
    "BinaryMessageComposer",
    "TextMessageParser",
    "TextMessageComposer",
    "Codec",
    "CompiledBinaryParser",
    "CompiledBinaryComposer",
    "CompiledTextParser",
    "CompiledTextComposer",
    "SpecDiscriminator",
    "PROBE_MATCH",
    "PROBE_REJECT",
    "PROBE_UNKNOWN",
    "compile_parser",
    "compile_composer",
    "compiled_artifacts",
    "discriminator_for",
    "FieldFunctionRegistry",
    "FieldFunctionContext",
    "default_function_registry",
    "load_mdl",
    "loads_mdl",
    "dump_mdl",
    "dumps_mdl",
    "clear_mdl_cache",
]

"""Deploy-time compilation of MDL specifications into fast codecs.

The generic interpreters of :mod:`repro.core.mdl.binary` and
:mod:`repro.core.mdl.text` pay for the MDL's genericity on every datagram:
binary parsing walks a bit-list :class:`~repro.core.typesys.BitBuffer` one
bit at a time, and text parsing re-derives delimiters and type lookups per
field.  This module lowers a specification *once* into:

* a **compiled binary codec** — contiguous fixed byte-aligned fields become
  one :mod:`struct` unpack per run, length-prefixed and self-describing
  fields become direct byte-slice decoders, and composing writes into a
  ``bytearray`` instead of a bit list;
* a **compiled text codec** — header delimiters, per-label converters and
  per-message compose plans are precomputed, so parsing is a sequence of
  ``str.find``/``str.split`` calls with no per-field spec walks;
* a **first-bytes discriminator** (:class:`SpecDiscriminator`) — a dict
  probe over the bytes that carry the message ``<Rule>`` (the rule field of
  a binary header, the first delimited token of a text header), used by
  ``EngineCore.classify`` to skip trial parses: ``REJECT`` is *sound* (the
  interpreted parser is guaranteed to raise :class:`ParseError` on these
  bytes), ``MATCH`` is a definite candidate whose full parse may still
  fail, and ``UNKNOWN`` falls back to a trial parse.

Compilation is strictly *behaviour-preserving*: a compiled codec produces
byte-identical wire output and value-identical abstract messages to the
interpreted path, and raises the same error classes (:class:`ParseError`
on bad input, :class:`~repro.core.errors.ComposeError` on bad messages).
Specifications the compiler cannot prove equivalent for — sub-byte field
widths, marshaller subclasses it does not know, delimiter-sized binary
fields — silently fall back to the interpreted classes, so
:func:`compile_parser`/:func:`compile_composer` are safe drop-in factories.

Compiled artifacts built against the *default* type/function registries
are cached on the :class:`~repro.core.mdl.spec.MDLSpec` itself
(see :meth:`MDLSpec.invalidate_codecs`).  The cache is what makes the
sharded deploy path cheap: every worker engine shares the same read-only
``mdl_specs`` mapping, so the first ``create_parser`` compiles and every
subsequent worker reuses the artifact — safe *only* because the model is
read-only after deployment (the same invariant that lets workers share the
merged automaton).
"""

from __future__ import annotations

import struct
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..errors import ComposeError, MarshallingError, MDLSpecificationError, ParseError
from ..message import AbstractMessage, PrimitiveField, StructuredField
from ..typesys import (
    BooleanMarshaller,
    BytesMarshaller,
    FQDNMarshaller,
    IntegerMarshaller,
    StringMarshaller,
    TypeRegistry,
    default_registry,
)
from .base import MessageComposer, MessageParser
from .binary import BinaryMessageComposer, BinaryMessageParser
from .functions import FieldFunctionContext, FieldFunctionRegistry
from .spec import FieldSpec, MDLKind, MDLSpec, SizeKind
from .text import TextMessageComposer, TextMessageParser

__all__ = [
    "Codec",
    "PROBE_REJECT",
    "PROBE_MATCH",
    "PROBE_UNKNOWN",
    "SpecDiscriminator",
    "CompiledBinaryParser",
    "CompiledBinaryComposer",
    "CompiledTextParser",
    "CompiledTextComposer",
    "compile_parser",
    "compile_composer",
    "discriminator_for",
    "compiled_artifacts",
]

_ENCODING = "utf-8"

#: Discriminator verdicts.  ``REJECT`` is sound: the interpreted parser is
#: guaranteed to raise :class:`ParseError` on these bytes.  ``MATCH`` is a
#: definite candidate (its parse may still fail on later fields) and
#: ``UNKNOWN`` means the discriminator cannot tell — trial-parse.
PROBE_REJECT = 0
PROBE_MATCH = 1
PROBE_UNKNOWN = 2


@runtime_checkable
class Codec(Protocol):
    """The parser/composer surface the engine binds per protocol.

    Both the interpreted interpreters and the compiled classes below
    satisfy this protocol; the engine layer depends only on it.
    """

    spec: MDLSpec

    def parse(self, data: bytes) -> AbstractMessage: ...

    def compose(self, message: AbstractMessage) -> bytes: ...


# ----------------------------------------------------------------------
# shared: message selection plans
# ----------------------------------------------------------------------
class _MessagePlan:
    """Per-message artifacts shared by the binary and text parse plans."""

    __slots__ = ("name", "mandatory", "ops", "body_label")

    def __init__(self, name: str, mandatory: List[str]) -> None:
        self.name = name
        self.mandatory = mandatory
        self.ops: List[Callable] = []
        self.body_label: Optional[str] = None


class _Selector:
    """Compiled ``select_message``: a dict probe where the rules allow it.

    Mirrors :meth:`MDLSpec.select_message` exactly — ruled messages in
    declaration order first, then the first rule-less message, else a
    :class:`MDLSpecificationError` with the interpreted wording (wrapped
    into :class:`ParseError` by the caller, as the interpreted path does).
    """

    __slots__ = ("protocol", "_ruled", "_by_value", "_rule_field", "_fallback")

    def __init__(self, spec: MDLSpec, plans: Dict[str, _MessagePlan]) -> None:
        self.protocol = spec.protocol
        self._ruled: List[Tuple[str, str, _MessagePlan]] = []
        self._fallback: Optional[_MessagePlan] = None
        for message in spec.messages:
            plan = plans[message.name]
            if message.rule is not None:
                self._ruled.append((message.rule.field_label, message.rule.value, plan))
            elif self._fallback is None:
                self._fallback = plan
        rule_fields = {label for label, _, _ in self._ruled}
        if len(rule_fields) == 1:
            self._rule_field = next(iter(rule_fields))
            self._by_value: Optional[Dict[str, _MessagePlan]] = {}
            for _, value, plan in self._ruled:
                self._by_value.setdefault(value, plan)
        else:
            self._rule_field = None
            self._by_value = None

    def select(self, values: Dict[str, Any]) -> _MessagePlan:
        if self._by_value is not None:
            observed = values.get(self._rule_field)
            if observed is not None:
                plan = self._by_value.get(str(observed))
                if plan is not None:
                    return plan
        else:
            for field_label, value, plan in self._ruled:
                observed = values.get(field_label)
                if observed is not None and str(observed) == value:
                    return plan
        if self._fallback is not None:
            return self._fallback
        raise MDLSpecificationError(
            f"no message spec of MDL {self.protocol} matches header {values!r}"
        )


def _type_names(spec: MDLSpec) -> Dict[str, str]:
    """Precomputed ``spec.type_of`` for every declared label."""
    return {label: decl.type_name for label, decl in spec.types.items()}


# ----------------------------------------------------------------------
# binary parse compilation
# ----------------------------------------------------------------------
_STRUCT_CODES = {8: "B", 16: "H", 32: "I", 64: "Q"}


def _decode_underrun(label: str, protocol: str, need_bits: int, have_bits: int) -> ParseError:
    return ParseError(
        f"cannot decode field '{label}' of {protocol}: "
        f"buffer underrun: need {need_bits} bits, have {have_bits}"
    )


#: One field of a struct run: label, byte width, value post-processor
#: (``None`` when the struct element is already final), and whether the
#: interpreter reads it as one ``read_uint`` (Integer/Boolean — the
#: underrun error names the full width) or byte-at-a-time
#: (String/Bytes — ``read_bytes`` always fails needing 8 bits with 0 left
#: on byte-aligned input).
_RunField = Tuple[str, int, Optional[Callable[[Any], Any]], bool]


def _underrun_for(entry: _RunField, protocol: str, data: bytes, cursor: int) -> ParseError:
    label, width, _, uint_read = entry
    if uint_read:
        return _decode_underrun(label, protocol, width * 8, (len(data) - cursor) * 8)
    return _decode_underrun(label, protocol, 8, 0)


def _make_run_op(fields: List[_RunField], protocol: str) -> Callable:
    """One ``struct`` unpack for a contiguous run of fixed byte-aligned fields."""
    fmt = ">"
    plan: List[Tuple[str, Optional[Callable[[Any], Any]]]] = []
    for label, width, post, _ in fields:
        # ``read_uint``-style fields of native widths come straight out of
        # struct as integers; everything else is an ``Ns`` byte slice with
        # the field's own post-processor (Boolean keeps ``bool`` via post).
        if post is _int_from_bytes and width * 8 in _STRUCT_CODES:
            fmt += _STRUCT_CODES[width * 8]
            plan.append((label, None))
        elif post is _bool_from_bytes and width * 8 in _STRUCT_CODES:
            fmt += _STRUCT_CODES[width * 8]
            plan.append((label, bool))
        else:
            fmt += f"{width}s"
            plan.append((label, post))
    packer = struct.Struct(fmt)
    size = packer.size
    unpack_from = packer.unpack_from

    def op(data: bytes, pos: int, values: Dict[str, Any], ordered: List) -> int:
        if pos + size > len(data):
            # Attribute the underrun to the first field that does not fit,
            # as the field-at-a-time interpreter would.
            cursor = pos
            for entry in fields:
                if cursor + entry[1] > len(data):
                    raise _underrun_for(entry, protocol, data, cursor)
                cursor += entry[1]
            raise _underrun_for(fields[0], protocol, data, pos)
        chunks = unpack_from(data, pos)
        for (label, post), chunk in zip(plan, chunks):
            if post is not None:
                try:
                    chunk = post(chunk)
                except Exception as exc:
                    raise ParseError(
                        f"cannot decode field '{label}' of {protocol}: {exc}"
                    ) from exc
            values[label] = chunk
            ordered.append((label, chunk))
        return pos + size

    return op


def _make_ref_op(
    label: str,
    reference: str,
    post: Optional[Callable[[Any], Any]],
    uint_read: bool,
    protocol: str,
) -> Callable:
    """Decode a field whose byte length is the value of an earlier field."""

    def op(data: bytes, pos: int, values: Dict[str, Any], ordered: List) -> int:
        reference_value = values.get(reference)
        if reference_value is None:
            raise ParseError(
                f"field '{label}' needs length field '{reference}' "
                "which has not been parsed yet"
            )
        try:
            nbytes = int(reference_value)
        except (TypeError, ValueError) as exc:
            raise ParseError(
                f"length field '{reference}' holds non-numeric value "
                f"{reference_value!r}"
            ) from exc
        if nbytes < 0:
            # ``read_uint`` rejects negative widths; ``read_bytes`` treats
            # them as an empty read — mirror both interpreter behaviours.
            if uint_read:
                raise ParseError(
                    f"cannot decode field '{label}' of {protocol}: "
                    "cannot read a negative number of bits"
                )
            nbytes = 0
        end = pos + nbytes
        if end > len(data):
            if uint_read:
                raise _decode_underrun(
                    label, protocol, nbytes * 8, (len(data) - pos) * 8
                )
            raise _decode_underrun(label, protocol, 8, 0)
        chunk = data[pos:end]
        if post is not None:
            try:
                chunk = post(chunk)
            except Exception as exc:
                raise ParseError(
                    f"cannot decode field '{label}' of {protocol}: {exc}"
                ) from exc
        values[label] = chunk
        ordered.append((label, chunk))
        return end

    return op


def _make_rest_op(
    label: str, post: Optional[Callable[[Any], Any]], protocol: str
) -> Callable:
    """Decode a remainder-sized String/Bytes field (all bytes left)."""

    def op(data: bytes, pos: int, values: Dict[str, Any], ordered: List) -> int:
        chunk = data[pos:]
        if post is not None:
            try:
                chunk = post(chunk)
            except Exception as exc:
                raise ParseError(
                    f"cannot decode field '{label}' of {protocol}: {exc}"
                ) from exc
        values[label] = chunk
        ordered.append((label, chunk))
        return len(data)

    return op


def _make_fqdn_op(label: str, protocol: str) -> Callable:
    """Decode a DNS-label-encoded name (self-describing length)."""

    def op(data: bytes, pos: int, values: Dict[str, Any], ordered: List) -> int:
        size = len(data)
        labels: List[str] = []
        while True:
            if pos >= size:
                raise _decode_underrun(label, protocol, 8, 0)
            length = data[pos]
            pos += 1
            if length == 0:
                break
            if pos + length > size:
                # ``read_bytes`` fails on the first missing byte: on
                # byte-aligned input the interpreter always reports needing
                # 8 bits with 0 left.
                raise _decode_underrun(label, protocol, 8, 0)
            try:
                labels.append(data[pos : pos + length].decode(_ENCODING))
            except Exception as exc:
                raise ParseError(
                    f"cannot decode field '{label}' of {protocol}: {exc}"
                ) from exc
            pos += length
        value = ".".join(labels)
        values[label] = value
        ordered.append((label, value))
        return pos

    return op


def _int_from_bytes(chunk: bytes) -> int:
    return int.from_bytes(chunk, "big")


def _bool_from_bytes(chunk: bytes) -> bool:
    return bool(int.from_bytes(chunk, "big"))


def _make_str_post(encoding: str) -> Callable[[bytes], str]:
    def post(chunk: bytes) -> str:
        return chunk.rstrip(b"\x00").decode(encoding)

    return post


def _compile_binary_ops(
    spec: MDLSpec,
    types: TypeRegistry,
    fields: List[FieldSpec],
    seen: List[str],
    ops: List[Callable],
) -> bool:
    """Lower one field list to ops (appending to ``ops``/``seen``).

    Returns ``False`` when any field cannot be compiled exactly, in which
    case the caller abandons compilation for the whole spec.
    """
    protocol = spec.protocol
    run: List[_RunField] = []

    def flush() -> None:
        if run:
            ops.append(_make_run_op(list(run), protocol))
            run.clear()

    for field_spec in fields:
        label = field_spec.label
        if "." in label:
            # A dotted label addresses a structured sub-field in
            # ``AbstractMessage.set``; the fast flat-field build below
            # would change semantics, so leave such specs interpreted.
            return False
        size = field_spec.size
        try:
            marshaller = types.get(spec.type_of(label))
        except Exception:
            return False
        kind = type(marshaller)
        if kind is IntegerMarshaller:
            post: Optional[Callable[[Any], Any]] = _int_from_bytes
            default_bits: Optional[int] = marshaller.default_bits
            uint_read = True
        elif kind is StringMarshaller:
            post = _make_str_post(marshaller.encoding)
            default_bits = None
            uint_read = False
        elif kind is BytesMarshaller:
            post = None
            default_bits = None
            uint_read = False
        elif kind is BooleanMarshaller:
            post = _bool_from_bytes
            default_bits = 1
            uint_read = True
        elif kind is FQDNMarshaller:
            post = None
            default_bits = None
            uint_read = False
        else:
            return False

        if kind is FQDNMarshaller:
            # The FQDN wire form carries its own length; the interpreted
            # marshaller ignores ``length_bits`` entirely, so only sizes
            # that the interpreter resolves to ``None`` are equivalent.
            if size.kind not in (SizeKind.SELF_DESCRIBING, SizeKind.REMAINDER):
                return False
            flush()
            ops.append(_make_fqdn_op(label, protocol))
        elif size.kind is SizeKind.FIXED_BITS:
            if size.bits % 8 != 0:
                return False
            run.append((label, size.bits // 8, post, uint_read))
        elif size.kind is SizeKind.FIELD_REFERENCE:
            if size.reference not in seen:
                return False
            flush()
            ops.append(_make_ref_op(label, size.reference, post, uint_read, protocol))
        elif size.kind in (SizeKind.REMAINDER, SizeKind.SELF_DESCRIBING):
            # The interpreter hands the marshaller ``length_bits=None``:
            # Integer/Boolean then read their default width, String/Bytes
            # read the remainder.
            if default_bits is not None:
                if default_bits % 8 != 0:
                    return False
                run.append((label, default_bits // 8, post, uint_read))
            else:
                flush()
                ops.append(_make_rest_op(label, post, protocol))
        else:
            # Delimiter sizes are a text-MDL notion; the interpreter raises
            # on every parse — keep that behaviour via the fallback.
            return False
        seen.append(label)
    flush()
    return True


class _BinaryParsePlan:
    __slots__ = ("protocol", "header_ops", "selector", "type_names")

    def __init__(self, spec: MDLSpec, types: TypeRegistry) -> None:
        self.protocol = spec.protocol
        self.type_names = _type_names(spec)
        self.header_ops: List[Callable] = []
        plans: Dict[str, _MessagePlan] = {}
        if spec.header is None:
            raise _NotCompilable
        seen: List[str] = []
        if not _compile_binary_ops(spec, types, spec.header.fields, seen, self.header_ops):
            raise _NotCompilable
        for message in spec.messages:
            plan = _MessagePlan(message.name, message.mandatory_fields)
            if not _compile_binary_ops(
                spec, types, message.fields, list(seen), plan.ops
            ):
                raise _NotCompilable
            plans[message.name] = plan
        self.selector = _Selector(spec, plans)


class _NotCompilable(Exception):
    """Internal: the spec cannot be lowered exactly; use the interpreter."""


def _build_message(
    name: str,
    mandatory: List[str],
    protocol: str,
    ordered: List[Tuple[str, Any]],
    type_names: Dict[str, str],
) -> AbstractMessage:
    """Build the parsed message without ``AbstractMessage.set``'s O(n) scan.

    ``set`` walks the field list per call (quadratic over a whole parse);
    a local label index gives the same create-or-overwrite semantics in
    one pass.  Spec labels are dot-free by compile gate, but text
    directive labels come off the wire — the first dotted label switches
    to ``set`` for the remainder, preserving its structured-path handling.
    """
    message = AbstractMessage(name, mandatory=mandatory, protocol=protocol)
    fields = message.fields
    index: Dict[str, PrimitiveField] = {}
    get_type = type_names.get
    slow = False
    for label, value in ordered:
        if slow or "." in label:
            slow = True
            message.set(label, value, type_name=get_type(label, "String"))
            continue
        existing = index.get(label)
        if existing is None:
            existing = PrimitiveField(label, get_type(label, "String"), None, value)
            index[label] = existing
            fields.append(existing)
        else:
            existing.value = value
            existing.type_name = get_type(label, "String")
    return message


class CompiledBinaryParser(MessageParser):
    """Byte-slice/struct parser compiled from a binary MDL specification."""

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
        _plan: Optional[_BinaryParsePlan] = None,
    ) -> None:
        super().__init__(spec, types, functions)
        self._plan = _plan if _plan is not None else _BinaryParsePlan(spec, self.types)

    def parse(self, data: bytes) -> AbstractMessage:
        plan = self._plan
        values: Dict[str, Any] = {}
        ordered: List[Tuple[str, Any]] = []
        try:
            pos = 0
            for op in plan.header_ops:
                pos = op(data, pos, values, ordered)
            message_plan = plan.selector.select(values)
            for op in message_plan.ops:
                pos = op(data, pos, values, ordered)
        except ParseError:
            raise
        except Exception as exc:
            raise ParseError(f"failed to parse {plan.protocol} message: {exc}") from exc
        return _build_message(
            message_plan.name,
            message_plan.mandatory,
            plan.protocol,
            ordered,
            plan.type_names,
        )


# ----------------------------------------------------------------------
# binary compose compilation
# ----------------------------------------------------------------------
_NO_RULE = object()

#: ``dict.get`` default distinguishing "field absent" from a ``None`` value.
_ABSENT = object()


def _present_values(message: AbstractMessage) -> Dict[str, Any]:
    """First-match label -> value map of a message's top-level fields.

    One walk replaces a ``has()``/``get()`` pair per spec field — each
    miss there raises and catches a ``FieldNotFoundError``.  Structured
    fields map to the field object, like ``AbstractMessage.get``.
    """
    present: Dict[str, Any] = {}
    for field in message.fields:
        if field.label not in present:
            present[field.label] = (
                field if isinstance(field, StructuredField) else field.value
            )
    return present


def _make_int_writer(nbytes: int) -> Callable[[Any, bytearray], None]:
    nbits = nbytes * 8

    def write(value: Any, out: bytearray) -> None:
        if value is None:
            value = 0
        try:
            ivalue = int(value)
        except (TypeError, ValueError) as exc:
            raise MarshallingError(f"cannot marshal {value!r} as Integer") from exc
        if ivalue < 0:
            raise MarshallingError(f"cannot write negative value {ivalue} as unsigned")
        if nbits < ivalue.bit_length():
            raise MarshallingError(f"value {ivalue} does not fit in {nbits} bits")
        out += ivalue.to_bytes(nbytes, "big")

    return write


def _make_bool_writer(nbytes: int) -> Callable[[Any, bytearray], None]:
    def write(value: Any, out: bytearray) -> None:
        out += (1 if value else 0).to_bytes(nbytes, "big")

    return write


def _make_str_writer(
    encoding: str, nbytes: Optional[int]
) -> Callable[[Any, bytearray], None]:
    def write(value: Any, out: bytearray) -> None:
        text = "" if value is None else str(value)
        data = text.encode(encoding)
        if nbytes is not None:
            if len(data) > nbytes:
                raise MarshallingError(
                    f"string {text!r} is {len(data)} bytes; field allows {nbytes}"
                )
            data = data.ljust(nbytes, b"\x00")
        out += data

    return write


def _make_bytes_writer(nbytes: Optional[int]) -> Callable[[Any, bytearray], None]:
    def write(value: Any, out: bytearray) -> None:
        data = bytes(value) if value is not None else b""
        if nbytes is not None:
            if len(data) > nbytes:
                raise MarshallingError(
                    f"byte field is {len(data)} bytes; field allows {nbytes}"
                )
            data = data.ljust(nbytes, b"\x00")
        out += data

    return write


def _fqdn_writer(value: Any, out: bytearray) -> None:
    name = ("" if value is None else str(value)).strip(".")
    if name:
        for label in name.split("."):
            data = label.encode(_ENCODING)
            if len(data) > 63:
                raise MarshallingError(f"DNS label too long: {label!r}")
            out.append(len(data))
            out += data
    out.append(0)


class _ComposeField:
    """Everything the compiled composer needs about one field."""

    __slots__ = ("label", "fixed_bits", "measure", "default", "rule_value", "write")

    def __init__(
        self,
        label: str,
        fixed_bits: Optional[int],
        measure: Callable[[Any], int],
        default: Any,
        rule_value: Any,
        write: Callable[[Any, bytearray], None],
    ) -> None:
        self.label = label
        self.fixed_bits = fixed_bits
        self.measure = measure
        self.default = default
        self.rule_value = rule_value
        self.write = write


class _BinaryComposePlan:
    __slots__ = ("protocol", "message_plans")

    def __init__(self, spec: MDLSpec, types: TypeRegistry) -> None:
        self.protocol = spec.protocol
        if spec.header is None:
            raise _NotCompilable
        self.message_plans: Dict[str, Tuple] = {}
        for message in spec.messages:
            all_fields = list(spec.header.fields) + list(message.fields)
            compiled: List[_ComposeField] = []
            functions: List[Tuple[str, str, tuple, bool]] = []
            sync: List[Tuple[str, str]] = []
            for field_spec in all_fields:
                compiled.append(self._compile_field(spec, types, message, field_spec))
                function = spec.function_of(field_spec.label)
                if function is not None:
                    functions.append(
                        (
                            field_spec.label,
                            function.name,
                            function.arguments,
                            function.name == "f-total-length",
                        )
                    )
                if (
                    field_spec.size.kind is SizeKind.FIELD_REFERENCE
                    and spec.function_of(field_spec.size.reference) is None
                ):
                    sync.append((field_spec.label, field_spec.size.reference))
            self.message_plans[message.name] = (compiled, functions, sync)

    @staticmethod
    def _compile_field(spec, types, message, field_spec) -> _ComposeField:
        label = field_spec.label
        if "." in label:
            # ``message.has``/``get`` treat a dotted label as a structured
            # path; the flat prefetch in ``compose`` would not.
            raise _NotCompilable
        size = field_spec.size
        try:
            marshaller = types.get(spec.type_of(label))
        except Exception:
            raise _NotCompilable from None
        kind = type(marshaller)
        fixed_bits = size.bits if size.kind is SizeKind.FIXED_BITS else None
        nbytes = None
        if fixed_bits is not None:
            if fixed_bits % 8 != 0 and kind is not FQDNMarshaller:
                raise _NotCompilable
            nbytes = fixed_bits // 8
        if kind is IntegerMarshaller:
            width = nbytes if nbytes is not None else marshaller.default_bits // 8
            if nbytes is None and marshaller.default_bits % 8 != 0:
                raise _NotCompilable
            write = _make_int_writer(width)
            default: Any = 0
        elif kind is StringMarshaller:
            write = _make_str_writer(marshaller.encoding, nbytes)
            default = ""
        elif kind is BytesMarshaller:
            write = _make_bytes_writer(nbytes)
            default = b""
        elif kind is BooleanMarshaller:
            if nbytes is None:
                # The default Boolean width is one bit: not byte-aligned.
                raise _NotCompilable
            write = _make_bool_writer(nbytes)
            default = False
        elif kind is FQDNMarshaller:
            # FQDN marshalling ignores the declared width (self-describing).
            write = _fqdn_writer
            default = ""
        else:
            raise _NotCompilable
        rule = message.rule
        if rule is not None and rule.field_label == label:
            try:
                rule_value: Any = marshaller.from_text(rule.value)
            except Exception:
                raise _NotCompilable from None
        else:
            rule_value = _NO_RULE
        return _ComposeField(
            label, fixed_bits, marshaller.wire_length_bits, default, rule_value, write
        )


class CompiledBinaryComposer(MessageComposer):
    """Bytearray composer compiled from a binary MDL specification.

    Runs the exact interpreted pipeline — resolve, measure, field
    functions, length-field synchronisation, two-pass totals, write — with
    every per-field decision (marshaller dispatch, rule constants, fixed
    widths) precomputed at compile time and byte-level writes instead of
    the bit-list buffer.
    """

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
        _plan: Optional[_BinaryComposePlan] = None,
    ) -> None:
        super().__init__(spec, types, functions)
        self._plan = _plan if _plan is not None else _BinaryComposePlan(spec, self.types)

    def compose(self, message: AbstractMessage) -> bytes:
        plan = self._plan
        entry = plan.message_plans.get(message.name)
        if entry is None:
            raise ComposeError(
                f"MDL for {plan.protocol} has no message '{message.name}'"
            )
        fields, function_list, sync = entry

        values: Dict[str, Any] = {}
        lengths: Dict[str, int] = {}
        present_get = _present_values(message).get
        total_bits = 0
        for field in fields:
            label = field.label
            value = present_get(label, _ABSENT)
            if value is _ABSENT:
                value = (
                    field.rule_value
                    if field.rule_value is not _NO_RULE
                    else field.default
                )
            values[label] = value
            bits = field.fixed_bits
            if bits is None:
                bits = field.measure(value)
            lengths[label] = bits
            total_bits += bits

        # Functions and synchronisation rewrite values, never lengths, so
        # the total accumulated above is the interpreted pipeline's total.
        self._apply_functions(function_list, values, lengths, None)
        self._synchronise(sync, values, lengths)
        self._apply_functions(function_list, values, lengths, total_bits)

        out = bytearray()
        for field in fields:
            try:
                field.write(values[field.label], out)
            except ComposeError:
                raise
            except Exception as exc:
                raise ComposeError(
                    f"cannot encode field '{field.label}' of message "
                    f"'{message.name}': {exc}"
                ) from exc
        return bytes(out)

    def _apply_functions(self, function_list, values, lengths, total_bits) -> None:
        if not function_list:
            return
        context = FieldFunctionContext(values, lengths, total_bits)
        evaluate = self.functions.evaluate
        for label, name, arguments, is_total in function_list:
            if is_total and total_bits is None:
                continue
            values[label] = evaluate(name, context, arguments)

    @staticmethod
    def _synchronise(sync, values, lengths) -> None:
        written: Dict[str, str] = {}
        for label, reference in sync:
            bits = lengths[label]
            if bits % 8 != 0:
                raise ComposeError(
                    f"field '{label}' marshals to {bits} bits, which is "
                    f"not byte-aligned; its length field '{reference}' counts bytes"
                )
            if reference in written:
                raise ComposeError(
                    f"length field '{reference}' is referenced by both "
                    f"'{written[reference]}' and '{label}'; a shared "
                    "length prefix is ambiguous"
                )
            written[reference] = label
            values[reference] = bits // 8


# ----------------------------------------------------------------------
# text compilation
# ----------------------------------------------------------------------
def _make_converter(from_text: Callable[[str], Any]) -> Callable[[str], Any]:
    def convert(token: str) -> Any:
        try:
            return from_text(token)
        except Exception:
            return token

    return convert


class _TextPlan:
    """Shared precomputation for the compiled text parser and composer."""

    __slots__ = (
        "protocol",
        "header_tokens",
        "header_parts",
        "header_body_label",
        "directive",
        "converters",
        "default_converter",
        "renderers",
        "default_renderer",
        "selector",
        "type_names",
        "message_plans",
        "parseable",
    )

    def __init__(self, spec: MDLSpec, types: TypeRegistry) -> None:
        if spec.header is None:
            raise _NotCompilable
        # Dotted labels address structured sub-fields in the message API;
        # the flat fast paths below would change semantics for them.
        for field_spec in spec.header.fields:
            if "." in field_spec.label:
                raise _NotCompilable
        for message_spec in spec.messages:
            for field_spec in message_spec.fields:
                if "." in field_spec.label:
                    raise _NotCompilable
        self.protocol = spec.protocol
        self.type_names = _type_names(spec)
        # Converters/renderers for every declared label, plus the defaults
        # applied to undeclared labels (``type_of`` falls back to String).
        self.converters: Dict[str, Optional[Callable[[str], Any]]] = {}
        self.renderers: Dict[str, Callable[[Any], str]] = {}
        self.default_converter = self._converter_for(types, "String")
        self.default_renderer = self._renderer_for(types, "String")
        for label, type_name in self.type_names.items():
            self.converters[label] = self._converter_for(types, type_name)
            self.renderers[label] = self._renderer_for(types, type_name)

        self.header_tokens: List[Tuple[str, str, Optional[Callable[[str], Any]]]] = []
        self.header_parts: List[Tuple[str, str]] = []
        self.header_body_label: Optional[str] = None
        self.parseable = True
        for field_spec in spec.header.fields:
            if field_spec.size.kind is SizeKind.REMAINDER:
                self.header_body_label = field_spec.label
                continue
            delimiter = "".join(
                chr(code) for code in field_spec.size.delimiter_codes
            )
            self.header_parts.append((field_spec.label, delimiter))
            if field_spec.size.kind is not SizeKind.DELIMITER:
                # The interpreted parser raises on such headers; composing
                # still works — keep the composer, fall back for parsing.
                self.parseable = False
                continue
            self.header_tokens.append(
                (
                    field_spec.label,
                    delimiter,
                    self.converters.get(field_spec.label, self.default_converter),
                )
            )

        directive = spec.header.fields_directive
        self.directive = (
            (directive.outer_delimiter, directive.inner_separator)
            if directive is not None
            else None
        )

        plans: Dict[str, _MessagePlan] = {}
        self.message_plans: Dict[str, Tuple] = {}
        for message in spec.messages:
            plan = _MessagePlan(message.name, message.mandatory_fields)
            plan.body_label = next(
                (
                    f.label
                    for f in message.fields
                    if f.size.kind is SizeKind.REMAINDER
                ),
                None,
            )
            plans[message.name] = plan
            declared = [
                f.label for f in message.fields if f.size.kind is not SizeKind.REMAINDER
            ]
            rule = message.rule
            self.message_plans[message.name] = (
                rule.field_label if rule is not None else None,
                rule.value if rule is not None else None,
                declared,
                frozenset(declared),
                plan.body_label,
            )
        self.selector = _Selector(spec, plans)

    @staticmethod
    def _converter_for(
        types: TypeRegistry, type_name: str
    ) -> Optional[Callable[[str], Any]]:
        """``None`` means "keep the raw token" (the identity fast path)."""
        if not types.has(type_name):
            return None
        marshaller = types.get(type_name)
        if type(marshaller) is StringMarshaller:
            return None  # StringMarshaller.from_text is the identity.
        return _make_converter(marshaller.from_text)

    @staticmethod
    def _renderer_for(types: TypeRegistry, type_name: str) -> Callable[[Any], str]:
        if types.has(type_name):
            return types.get(type_name).to_text
        return lambda value: "" if value is None else str(value)


class CompiledTextParser(MessageParser):
    """Slice/split parser compiled from a text MDL specification."""

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
        _plan: Optional[_TextPlan] = None,
    ) -> None:
        super().__init__(spec, types, functions)
        plan = _plan if _plan is not None else _TextPlan(spec, self.types)
        if not plan.parseable:
            raise _NotCompilable
        self._plan = plan

    def parse(self, data: bytes) -> AbstractMessage:
        plan = self._plan
        try:
            text = data.decode(_ENCODING)
        except UnicodeDecodeError as exc:
            raise ParseError(
                f"{plan.protocol} message is not valid {_ENCODING} text"
            ) from exc

        position = 0
        values: Dict[str, Any] = {}
        ordered: List[Tuple[str, Any]] = []
        find = text.find
        for label, delimiter, convert in plan.header_tokens:
            index = find(delimiter, position)
            if index < 0:
                raise ParseError(
                    f"delimiter {delimiter!r} for field '{label}' not found in "
                    f"{plan.protocol} message"
                )
            token = text[position:index]
            position = index + len(delimiter)
            value = convert(token) if convert is not None else token
            values[label] = value
            ordered.append((label, value))

        if plan.directive is not None:
            outer, separator = plan.directive
            lines = text[position:].split(outer)
            consumed_lines = 0
            converters_get = plan.converters.get
            default_converter = plan.default_converter
            for line in lines:
                consumed_lines += 1
                if line == "":
                    break
                if separator not in line:
                    continue
                label, _, raw_value = line.partition(separator)
                label = label.strip()
                token = raw_value.strip()
                convert = converters_get(label, default_converter)
                value = convert(token) if convert is not None else token
                values[label] = value
                ordered.append((label, value))
            body_text = outer.join(lines[consumed_lines:])
        else:
            body_text = text[position:]

        try:
            message_plan = plan.selector.select(values)
        except Exception as exc:
            raise ParseError(str(exc)) from exc

        body_label = plan.header_body_label
        if body_label is None:
            body_label = message_plan.body_label
        if body_label is not None:
            values[body_label] = body_text
            ordered.append((body_label, body_text))

        return _build_message(
            message_plan.name,
            message_plan.mandatory,
            plan.protocol,
            ordered,
            plan.type_names,
        )


class CompiledTextComposer(MessageComposer):
    """String-join composer compiled from a text MDL specification."""

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
        _plan: Optional[_TextPlan] = None,
    ) -> None:
        super().__init__(spec, types, functions)
        self._plan = _plan if _plan is not None else _TextPlan(spec, self.types)

    def compose(self, message: AbstractMessage) -> bytes:
        plan = self._plan
        entry = plan.message_plans.get(message.name)
        if entry is None:
            raise ComposeError(
                f"MDL for {plan.protocol} has no message '{message.name}'"
            )
        rule_field, rule_value, declared, declared_set, body_label = entry
        renderers_get = plan.renderers.get
        default_renderer = plan.default_renderer

        parts: List[str] = []
        consumed_labels: set = set()
        present_get = _present_values(message).get
        for label, delimiter in plan.header_parts:
            value = present_get(label, _ABSENT)
            if value is _ABSENT:
                value = rule_value if label == rule_field else ""
            parts.append(renderers_get(label, default_renderer)(value))
            parts.append(delimiter)
            consumed_labels.add(label)

        body_value = ""
        if plan.header_body_label is not None:
            body_label = plan.header_body_label
        if body_label is not None:
            consumed_labels.add(body_label)
            body_value = renderers_get(body_label, default_renderer)(
                present_get(body_label, "")
            )

        if plan.directive is not None:
            outer, separator = plan.directive
            emitted: set = set()
            # A dotted top-level label is invisible to ``message.has``
            # (it reads as a structured path), so the interpreted
            # composer skips such extras — match that.
            extra = [
                field.label
                for field in message.fields
                if isinstance(field, PrimitiveField)
                and field.label not in consumed_labels
                and field.label not in declared_set
                and "." not in field.label
            ]
            for label in declared + extra:
                if label in emitted or label in consumed_labels:
                    continue
                value = present_get(label, _ABSENT)
                if value is _ABSENT:
                    continue
                parts.append(
                    f"{label}{separator} "
                    f"{renderers_get(label, default_renderer)(value)}{outer}"
                )
                emitted.add(label)
            parts.append(outer)

        if body_value:
            parts.append(body_value)
        return "".join(parts).encode(_ENCODING)


# ----------------------------------------------------------------------
# first-bytes discriminator
# ----------------------------------------------------------------------
class SpecDiscriminator:
    """A sound first-bytes probe for one protocol specification.

    :meth:`probe` inspects only the bytes that carry the spec's message
    ``<Rule>`` value and answers in O(1):

    * :data:`PROBE_MATCH` — the rule bytes name a known message; the full
      parse is worth attempting (it may still fail on later fields);
    * :data:`PROBE_REJECT` — **sound**: the interpreted parser is
      guaranteed to raise :class:`ParseError` on these bytes (the message
      is too short for the rule field, or the rule value matches no
      message and the spec has no rule-less fallback).

    Build one with :func:`discriminator_for`; specs whose rules the
    compiler cannot prove sound (a rule field behind variable-length
    fields, a rule-less fallback message, non-integer binary rule values)
    get no discriminator and classify falls back to trial parsing.
    """

    __slots__ = ("probe",)

    def __init__(self, probe: Callable[[bytes], int]) -> None:
        self.probe = probe


def _binary_discriminator(spec: MDLSpec, types: TypeRegistry) -> Optional[SpecDiscriminator]:
    if spec.header is None or not spec.messages:
        return None
    rules = [message.rule for message in spec.messages]
    if any(rule is None for rule in rules):
        return None  # A rule-less fallback accepts anything: never reject.
    rule_fields = {rule.field_label for rule in rules}
    if len(rule_fields) != 1:
        return None
    rule_field = next(iter(rule_fields))
    offset = 0
    width = None
    for field_spec in spec.header.fields:
        size = field_spec.size
        if size.kind is not SizeKind.FIXED_BITS or size.bits % 8 != 0:
            return None
        if field_spec.label == rule_field:
            try:
                marshaller = types.get(spec.type_of(rule_field))
            except Exception:
                return None
            if type(marshaller) is not IntegerMarshaller:
                return None
            width = size.bits // 8
            break
        offset += size.bits // 8
    if width is None:
        return None  # The rule field is not a header field.
    value_set = set()
    for rule in rules:
        try:
            value = int(rule.value)
        except ValueError:
            return None
        if str(value) != rule.value:
            return None  # ``str(decoded) == rule.value`` would never hold.
        value_set.add(value)
    end = offset + width

    def probe(data: bytes) -> int:
        if len(data) < end:
            return PROBE_REJECT
        return (
            PROBE_MATCH
            if int.from_bytes(data[offset:end], "big") in value_set
            else PROBE_REJECT
        )

    return SpecDiscriminator(probe)


def _text_discriminator(spec: MDLSpec, types: TypeRegistry) -> Optional[SpecDiscriminator]:
    if spec.header is None or not spec.header.fields or not spec.messages:
        return None
    first = spec.header.fields[0]
    if first.size.kind is not SizeKind.DELIMITER:
        return None
    if types.has(spec.type_of(first.label)):
        if type(types.get(spec.type_of(first.label))) is not StringMarshaller:
            return None  # A converting type breaks token == rule equality.
    delimiter = "".join(chr(code) for code in first.size.delimiter_codes)
    rules = [message.rule for message in spec.messages]
    if any(rule is None for rule in rules):
        return None
    prefixes: Dict[int, set] = {}
    for rule in rules:
        if rule.field_label != first.label or delimiter in rule.value:
            return None
        prefix = (rule.value + delimiter).encode(_ENCODING)
        prefixes.setdefault(len(prefix), set()).add(prefix)
    tables = sorted(prefixes.items())

    def probe(data: bytes) -> int:
        for length, table in tables:
            if data[:length] in table:
                return PROBE_MATCH
        return PROBE_REJECT

    return SpecDiscriminator(probe)


def _build_discriminator(spec: MDLSpec, types: TypeRegistry) -> Optional[SpecDiscriminator]:
    if spec.kind is MDLKind.BINARY:
        return _binary_discriminator(spec, types)
    if spec.kind is MDLKind.TEXT:
        return _text_discriminator(spec, types)
    return None


# ----------------------------------------------------------------------
# compilation entry points and the per-spec cache
# ----------------------------------------------------------------------
class CompiledArtifacts:
    """Everything compiled for one spec under the default registries."""

    __slots__ = ("parser", "composer", "discriminator")

    def __init__(
        self,
        parser: MessageParser,
        composer: MessageComposer,
        discriminator: Optional[SpecDiscriminator],
    ) -> None:
        self.parser = parser
        self.composer = composer
        self.discriminator = discriminator


def _build_parser(
    spec: MDLSpec, types: Optional[TypeRegistry], functions: Optional[FieldFunctionRegistry]
) -> MessageParser:
    try:
        if spec.kind is MDLKind.BINARY:
            return CompiledBinaryParser(spec, types, functions)
        if spec.kind is MDLKind.TEXT:
            return CompiledTextParser(spec, types, functions)
    except _NotCompilable:
        pass
    if spec.kind is MDLKind.BINARY:
        return BinaryMessageParser(spec, types, functions)
    if spec.kind is MDLKind.TEXT:
        return TextMessageParser(spec, types, functions)
    raise MDLSpecificationError(f"unknown MDL dialect: {spec.kind!r}")


def _build_composer(
    spec: MDLSpec, types: Optional[TypeRegistry], functions: Optional[FieldFunctionRegistry]
) -> MessageComposer:
    try:
        if spec.kind is MDLKind.BINARY:
            return CompiledBinaryComposer(spec, types, functions)
        if spec.kind is MDLKind.TEXT:
            return CompiledTextComposer(spec, types, functions)
    except _NotCompilable:
        pass
    if spec.kind is MDLKind.BINARY:
        return BinaryMessageComposer(spec, types, functions)
    if spec.kind is MDLKind.TEXT:
        return TextMessageComposer(spec, types, functions)
    raise MDLSpecificationError(f"unknown MDL dialect: {spec.kind!r}")


def compiled_artifacts(spec: MDLSpec) -> CompiledArtifacts:
    """The compiled codec pair + discriminator for ``spec``, cached on it.

    Built against the default type and function registries and cached on
    the specification object (see :meth:`MDLSpec.invalidate_codecs`): all
    engines sharing a read-only spec — every worker of a sharded runtime —
    share one compiled artifact.  The parser and composer are stateless,
    so sharing instances is safe.
    """
    cache = getattr(spec, "_codec_cache", None)
    if cache is not None:
        return cache
    artifacts = CompiledArtifacts(
        _build_parser(spec, None, None),
        _build_composer(spec, None, None),
        _build_discriminator(spec, default_registry()),
    )
    spec._codec_cache = artifacts
    return artifacts


def compile_parser(
    spec: MDLSpec,
    types: Optional[TypeRegistry] = None,
    functions: Optional[FieldFunctionRegistry] = None,
) -> MessageParser:
    """A compiled parser for ``spec`` (interpreted fallback when needed).

    With default registries the shared per-spec cache is used; explicit
    registries compile fresh so plug-in marshallers are honoured.
    """
    if types is None and functions is None:
        return compiled_artifacts(spec).parser
    return _build_parser(spec, types, functions)


def compile_composer(
    spec: MDLSpec,
    types: Optional[TypeRegistry] = None,
    functions: Optional[FieldFunctionRegistry] = None,
) -> MessageComposer:
    """A compiled composer for ``spec`` (interpreted fallback when needed)."""
    if types is None and functions is None:
        return compiled_artifacts(spec).composer
    return _build_composer(spec, types, functions)


def discriminator_for(spec: MDLSpec) -> Optional[SpecDiscriminator]:
    """The spec's first-bytes discriminator, or ``None`` when unsound."""
    return compiled_artifacts(spec).discriminator

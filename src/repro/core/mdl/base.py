"""Common interface of MDL-driven message parsers and composers.

The Starlink architecture (Fig. 6) places a *message parser* and a *message
composer* between the network engine (which deals in raw byte arrays) and
the automata engine (which deals in abstract messages).  Both are generic
interpreters specialised at runtime by loading an MDL specification; this
module defines their shared interface and the factory that picks the right
interpreter for an MDL dialect.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MDLSpecificationError
from ..message import AbstractMessage
from ..typesys import TypeRegistry, default_registry
from .functions import FieldFunctionRegistry, default_function_registry
from .spec import MDLKind, MDLSpec

__all__ = ["MessageParser", "MessageComposer", "create_parser", "create_composer"]


class MessageParser:
    """Reads concrete network messages into abstract messages."""

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
    ) -> None:
        self.spec = spec
        self.types = types if types is not None else default_registry()
        self.functions = functions if functions is not None else default_function_registry()

    def parse(self, data: bytes) -> AbstractMessage:
        """Parse ``data`` into an abstract message.

        Raises :class:`~repro.core.errors.ParseError` when the bytes do not
        match the specification.
        """
        raise NotImplementedError

    def accepts(self, data: bytes) -> bool:
        """Return ``True`` when ``data`` parses successfully under this MDL."""
        from ..errors import MDLError

        try:
            self.parse(data)
            return True
        except MDLError:
            return False


class MessageComposer:
    """Writes abstract messages back into concrete network messages."""

    def __init__(
        self,
        spec: MDLSpec,
        types: Optional[TypeRegistry] = None,
        functions: Optional[FieldFunctionRegistry] = None,
    ) -> None:
        self.spec = spec
        self.types = types if types is not None else default_registry()
        self.functions = functions if functions is not None else default_function_registry()

    def compose(self, message: AbstractMessage) -> bytes:
        """Serialise ``message`` into the protocol's wire format.

        Raises :class:`~repro.core.errors.ComposeError` when the message
        cannot be expressed under the loaded MDL.
        """
        raise NotImplementedError


def create_parser(
    spec: MDLSpec,
    types: Optional[TypeRegistry] = None,
    functions: Optional[FieldFunctionRegistry] = None,
    interpreted: bool = False,
) -> MessageParser:
    """Instantiate a parser for the MDL dialect.

    By default this returns a compiled codec (see
    :mod:`repro.core.mdl.compiled`), behaviourally identical to the
    interpreter but operating on bytes instead of a bit list; specs the
    compiler cannot prove equivalent for fall back automatically.  Pass
    ``interpreted=True`` to force the original interpreting parser — the
    escape hatch used by the differential tests and for debugging.
    """
    if not interpreted:
        from .compiled import compile_parser

        return compile_parser(spec, types, functions)
    from .binary import BinaryMessageParser
    from .text import TextMessageParser

    if spec.kind is MDLKind.BINARY:
        return BinaryMessageParser(spec, types, functions)
    if spec.kind is MDLKind.TEXT:
        return TextMessageParser(spec, types, functions)
    raise MDLSpecificationError(f"unknown MDL dialect: {spec.kind!r}")


def create_composer(
    spec: MDLSpec,
    types: Optional[TypeRegistry] = None,
    functions: Optional[FieldFunctionRegistry] = None,
    interpreted: bool = False,
) -> MessageComposer:
    """Instantiate a composer for the MDL dialect.

    Compiled by default with automatic interpreter fallback; pass
    ``interpreted=True`` to force the original interpreting composer.
    """
    if not interpreted:
        from .compiled import compile_composer

        return compile_composer(spec, types, functions)
    from .binary import BinaryMessageComposer
    from .text import TextMessageComposer

    if spec.kind is MDLKind.BINARY:
        return BinaryMessageComposer(spec, types, functions)
    if spec.kind is MDLKind.TEXT:
        return TextMessageComposer(spec, types, functions)
    raise MDLSpecificationError(f"unknown MDL dialect: {spec.kind!r}")

"""Field functions evaluated by MDL composers.

The ``[f-method()]`` construct of the paper attaches a function to a type
declaration; the marshaller executes the named function when *writing* the
field.  The canonical example is ``URLLength`` declared as
``Integer[f-length(URLEntry)]``: when composing, the framework measures the
marshalled length of ``URLEntry`` and writes that number into
``URLLength``.

Functions are looked up in a :class:`FieldFunctionRegistry`; new functions
can be plugged in at runtime alongside new marshallers.  The built-ins are:

``f-length(field)``
    byte length of the referenced field's marshalled value;
``f-total-length()``
    total byte length of the composed message (header plus body);
``f-count(field)``
    number of comma-separated entries in the referenced field's value;
``f-constant(value)``
    the literal value given as argument.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from ..errors import MDLSpecificationError

__all__ = ["FieldFunctionContext", "FieldFunctionRegistry", "default_function_registry"]


class FieldFunctionContext:
    """Everything a field function may need while composing one message.

    Attributes
    ----------
    field_values:
        Mapping of field label to the (resolved) Python value of that field.
    field_lengths_bits:
        Mapping of field label to the marshalled length, in bits, of that
        field's value.
    total_length_bits:
        The total length of the composed message in bits, or ``None`` while
        it is not yet known (functions depending on it are evaluated in a
        second pass).
    """

    def __init__(
        self,
        field_values: Mapping[str, Any],
        field_lengths_bits: Mapping[str, int],
        total_length_bits: int | None = None,
    ) -> None:
        self.field_values = dict(field_values)
        self.field_lengths_bits = dict(field_lengths_bits)
        self.total_length_bits = total_length_bits


FieldFunction = Callable[[FieldFunctionContext, tuple], Any]


def _f_length(context: FieldFunctionContext, arguments: tuple) -> int:
    if not arguments:
        raise MDLSpecificationError("f-length requires a field argument")
    label = arguments[0]
    bits = context.field_lengths_bits.get(label)
    if bits is None:
        value = context.field_values.get(label)
        if value is None:
            return 0
        if isinstance(value, bytes):
            return len(value)
        return len(str(value).encode("utf-8"))
    return bits // 8


def _f_total_length(context: FieldFunctionContext, arguments: tuple) -> int:
    if context.total_length_bits is None:
        # Evaluated again in the second composing pass once the total is known.
        return 0
    return context.total_length_bits // 8


def _f_count(context: FieldFunctionContext, arguments: tuple) -> int:
    if not arguments:
        raise MDLSpecificationError("f-count requires a field argument")
    value = context.field_values.get(arguments[0])
    if value is None or value == "":
        return 0
    if isinstance(value, (list, tuple)):
        return len(value)
    return len([part for part in str(value).split(",") if part != ""])


def _f_constant(context: FieldFunctionContext, arguments: tuple) -> Any:
    if not arguments:
        raise MDLSpecificationError("f-constant requires a literal argument")
    literal = arguments[0]
    return int(literal) if literal.isdigit() else literal


class FieldFunctionRegistry:
    """Runtime-extensible registry of field functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, FieldFunction] = {}

    def register(self, name: str, function: FieldFunction) -> None:
        self._functions[name] = function

    def register_defaults(self) -> "FieldFunctionRegistry":
        self.register("f-length", _f_length)
        self.register("f-total-length", _f_total_length)
        self.register("f-count", _f_count)
        self.register("f-constant", _f_constant)
        return self

    def has(self, name: str) -> bool:
        return name in self._functions

    def evaluate(self, name: str, context: FieldFunctionContext, arguments: tuple) -> Any:
        try:
            function = self._functions[name]
        except KeyError:
            raise MDLSpecificationError(f"unknown field function '{name}'") from None
        return function(context, arguments)

    def names(self) -> list[str]:
        return sorted(self._functions)


def default_function_registry() -> FieldFunctionRegistry:
    """Return a fresh registry containing the built-in field functions."""
    return FieldFunctionRegistry().register_defaults()

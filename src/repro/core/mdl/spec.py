"""Message Description Language (MDL) specification model.

Section IV-A of the paper introduces the MDL: a declarative description of
a protocol's message formats that is *interpreted at runtime* by generic
parsers and composers.  An MDL specification (Fig. 7 for the binary SLP
dialect, Fig. 11 for the text SSDP dialect) contains:

``<Types>``
    a mapping from field label to data type, optionally carrying a *field
    function* such as ``Integer[f-length(URLEntry)]`` which the composer
    evaluates to fill the field automatically;
``<Header type=...>``
    the ordered fields common to every message of the protocol, each with a
    *size*;
``<Message type=...>``
    one entry per message kind, carrying a ``<Rule>`` that relates the
    message body to header content (e.g. ``FunctionID=1``) plus its own
    ordered fields.

Field sizes come in three flavours, captured by :class:`SizeSpec`:

* a **fixed** number of bits (binary MDLs — ``<XID>16</XID>``),
* a **reference to another field** whose value gives the length in *bytes*
  (binary MDLs — ``<PRStringTable>PRLength</PRStringTable>``; length-prefix
  fields are counted in bytes on the wire, which is how SLP and DNS encode
  them),
* a **delimiter**, given as a comma-separated list of character codes (text
  MDLs — ``<Version>13,10</Version>`` means "terminated by CR LF").

Text MDLs additionally support the ``<Fields>`` directive of Fig. 11
(``<Fields>13,10:58</Fields>``): the remainder of the message is a sequence
of lines separated by the outer delimiter, each split on the inner
separator into a field label (left) and value (right).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MDLSpecificationError

__all__ = [
    "MDLKind",
    "SizeKind",
    "SizeSpec",
    "FieldFunctionSpec",
    "TypeDecl",
    "FieldSpec",
    "FieldsDirective",
    "HeaderSpec",
    "MessageRule",
    "MessageSpec",
    "MDLSpec",
]


class MDLKind(enum.Enum):
    """The dialect of an MDL specification."""

    BINARY = "binary"
    TEXT = "text"


class SizeKind(enum.Enum):
    FIXED_BITS = "fixed"
    FIELD_REFERENCE = "field-reference"
    DELIMITER = "delimiter"
    REMAINDER = "remainder"
    SELF_DESCRIBING = "self"


@dataclass(frozen=True)
class SizeSpec:
    """The size of one message field (see module docstring)."""

    kind: SizeKind
    bits: int = 0
    reference: str = ""
    delimiter_codes: Tuple[int, ...] = ()

    @classmethod
    def fixed(cls, bits: int) -> "SizeSpec":
        if bits <= 0:
            raise MDLSpecificationError(f"fixed field size must be positive, got {bits}")
        return cls(SizeKind.FIXED_BITS, bits=bits)

    @classmethod
    def field_reference(cls, label: str) -> "SizeSpec":
        if not label:
            raise MDLSpecificationError("field-reference size needs a field label")
        return cls(SizeKind.FIELD_REFERENCE, reference=label)

    @classmethod
    def delimiter(cls, codes: Sequence[int]) -> "SizeSpec":
        if not codes:
            raise MDLSpecificationError("delimiter size needs at least one character code")
        return cls(SizeKind.DELIMITER, delimiter_codes=tuple(codes))

    @classmethod
    def remainder(cls) -> "SizeSpec":
        """The field occupies whatever is left of the message."""
        return cls(SizeKind.REMAINDER)

    @classmethod
    def self_describing(cls) -> "SizeSpec":
        """The field's wire encoding carries its own length (e.g. FQDN)."""
        return cls(SizeKind.SELF_DESCRIBING)

    @classmethod
    def parse(cls, text: str) -> "SizeSpec":
        """Parse the textual size notation used by the XML MDL documents.

        ``"16"`` is sixteen bits; ``"13,10"`` is a delimiter (CR LF);
        ``"PRLength"`` references another field; ``"*"`` is the remainder;
        ``"self"`` marks a self-describing encoding such as a DNS name.
        """
        text = text.strip()
        if text == "*":
            return cls.remainder()
        if text.lower() == "self":
            return cls.self_describing()
        if "," in text:
            try:
                codes = [int(part) for part in text.split(",")]
            except ValueError:
                raise MDLSpecificationError(f"bad delimiter size spec {text!r}") from None
            return cls.delimiter(codes)
        if text.isdigit():
            return cls.fixed(int(text))
        return cls.field_reference(text)

    @property
    def delimiter_bytes(self) -> bytes:
        return bytes(self.delimiter_codes)

    def render(self) -> str:
        """Inverse of :meth:`parse`."""
        if self.kind is SizeKind.FIXED_BITS:
            return str(self.bits)
        if self.kind is SizeKind.FIELD_REFERENCE:
            return self.reference
        if self.kind is SizeKind.DELIMITER:
            return ",".join(str(code) for code in self.delimiter_codes)
        if self.kind is SizeKind.SELF_DESCRIBING:
            return "self"
        return "*"


@dataclass(frozen=True)
class FieldFunctionSpec:
    """A field function attached to a type declaration.

    Notation in the paper: ``Integer[f-length(URLEntry)]``.  ``name`` is the
    function name (``f-length``) and ``arguments`` the referenced field
    labels.
    """

    name: str
    arguments: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FieldFunctionSpec":
        text = text.strip()
        if "(" not in text:
            return cls(text)
        name, _, rest = text.partition("(")
        rest = rest.rstrip(")")
        args = tuple(arg.strip() for arg in rest.split(",") if arg.strip())
        return cls(name.strip(), args)

    def render(self) -> str:
        return f"{self.name}({', '.join(self.arguments)})"


@dataclass(frozen=True)
class TypeDecl:
    """One entry of the ``<Types>`` section."""

    label: str
    type_name: str
    function: Optional[FieldFunctionSpec] = None

    @classmethod
    def parse(cls, label: str, declaration: str) -> "TypeDecl":
        """Parse ``"Integer[f-length(URLEntry)]"``-style declarations."""
        declaration = declaration.strip()
        if "[" in declaration:
            type_name, _, rest = declaration.partition("[")
            function = FieldFunctionSpec.parse(rest.rstrip("]"))
            return cls(label, type_name.strip(), function)
        return cls(label, declaration)

    def render(self) -> str:
        if self.function is None:
            return self.type_name
        return f"{self.type_name}[{self.function.render()}]"


@dataclass(frozen=True)
class FieldSpec:
    """One field of a header or message body: a label plus a size."""

    label: str
    size: SizeSpec
    mandatory: bool = False


@dataclass(frozen=True)
class FieldsDirective:
    """The text-MDL ``<Fields>`` directive (Fig. 11).

    ``outer_delimiter_codes`` separate successive fields (usually CR LF) and
    ``inner_separator_code`` splits each into label and value (usually the
    colon).
    """

    outer_delimiter_codes: Tuple[int, ...]
    inner_separator_code: int

    @classmethod
    def parse(cls, text: str) -> "FieldsDirective":
        text = text.strip()
        if ":" not in text:
            raise MDLSpecificationError(
                f"Fields directive must be '<outer codes>:<inner code>', got {text!r}"
            )
        outer, _, inner = text.rpartition(":")
        try:
            outer_codes = tuple(int(part) for part in outer.split(","))
            inner_code = int(inner)
        except ValueError:
            raise MDLSpecificationError(f"bad Fields directive {text!r}") from None
        return cls(outer_codes, inner_code)

    @property
    def outer_delimiter(self) -> str:
        return "".join(chr(code) for code in self.outer_delimiter_codes)

    @property
    def inner_separator(self) -> str:
        return chr(self.inner_separator_code)

    def render(self) -> str:
        outer = ",".join(str(code) for code in self.outer_delimiter_codes)
        return f"{outer}:{self.inner_separator_code}"


@dataclass
class HeaderSpec:
    """The ``<Header>`` section: fields common to all messages of the protocol."""

    protocol: str
    fields: List[FieldSpec] = field(default_factory=list)
    fields_directive: Optional[FieldsDirective] = None

    def field_labels(self) -> List[str]:
        return [f.label for f in self.fields]


@dataclass(frozen=True)
class MessageRule:
    """The ``<Rule>`` relating a message body to header content.

    ``FunctionID=1`` means: this body applies when the header field
    ``FunctionID`` equals ``1`` (and, when composing, the composer writes
    ``1`` into ``FunctionID``).
    """

    field_label: str
    value: str

    @classmethod
    def parse(cls, text: str) -> "MessageRule":
        text = text.strip().rstrip(">")
        if "=" not in text:
            raise MDLSpecificationError(f"message rule must be 'field=value', got {text!r}")
        label, _, value = text.partition("=")
        return cls(label.strip(), value.strip())

    def render(self) -> str:
        return f"{self.field_label}={self.value}"

    def matches(self, observed: object) -> bool:
        """Compare the observed header value against the rule value."""
        if observed is None:
            return False
        return str(observed) == self.value


@dataclass
class MessageSpec:
    """One ``<Message>`` entry: a named message kind of the protocol."""

    name: str
    rule: Optional[MessageRule] = None
    fields: List[FieldSpec] = field(default_factory=list)
    #: Labels the semantic-equivalence operator treats as mandatory.
    mandatory_fields: List[str] = field(default_factory=list)

    def field_labels(self) -> List[str]:
        return [f.label for f in self.fields]


@dataclass
class MDLSpec:
    """A complete MDL specification for one protocol."""

    protocol: str
    kind: MDLKind
    types: Dict[str, TypeDecl] = field(default_factory=dict)
    header: Optional[HeaderSpec] = None
    messages: List[MessageSpec] = field(default_factory=list)
    #: Compiled codec artifacts (see :mod:`repro.core.mdl.compiled`), built
    #: lazily on first use and shared by everything holding this spec.
    #: Valid only while the spec is read-only — mutators below invalidate.
    _codec_cache: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def add_type(self, label: str, declaration: str) -> "MDLSpec":
        self.types[label] = TypeDecl.parse(label, declaration)
        self.invalidate_codecs()
        return self

    def add_message(self, message: MessageSpec) -> "MDLSpec":
        if any(existing.name == message.name for existing in self.messages):
            raise MDLSpecificationError(
                f"duplicate message spec '{message.name}' in MDL for {self.protocol}"
            )
        self.messages.append(message)
        self.invalidate_codecs()
        return self

    def invalidate_codecs(self) -> None:
        """Drop cached compiled codecs after mutating the specification.

        Direct mutation of ``header``/``messages``/``types`` contents (as
        opposed to the ``add_*`` helpers) must be followed by an explicit
        call before the spec is used for parsing or composing again.
        """
        self._codec_cache = None

    # ------------------------------------------------------------------
    def type_of(self, label: str) -> str:
        """Return the declared type name of a field label (default String)."""
        decl = self.types.get(label)
        return decl.type_name if decl else "String"

    def function_of(self, label: str) -> Optional[FieldFunctionSpec]:
        decl = self.types.get(label)
        return decl.function if decl else None

    def message(self, name: str) -> MessageSpec:
        for spec in self.messages:
            if spec.name == name:
                return spec
        raise MDLSpecificationError(f"MDL for {self.protocol} has no message '{name}'")

    def message_names(self) -> List[str]:
        return [spec.name for spec in self.messages]

    def select_message(self, header_values: Dict[str, object]) -> MessageSpec:
        """Select the message spec whose rule matches the parsed header."""
        for spec in self.messages:
            if spec.rule is None:
                continue
            observed = header_values.get(spec.rule.field_label)
            if spec.rule.matches(observed):
                return spec
        for spec in self.messages:
            if spec.rule is None:
                return spec
        raise MDLSpecificationError(
            f"no message spec of MDL {self.protocol} matches header {header_values!r}"
        )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raise :class:`MDLSpecificationError`.

        Verifies that every field-reference size points at a field declared
        earlier in the same header/message scope, and that every field
        function argument names a field of some message or of the header.
        """
        if self.header is None:
            raise MDLSpecificationError(f"MDL for {self.protocol} has no header")
        header_labels = self.header.field_labels()
        self._check_references(self.header.fields, header_labels, scope="header")
        all_labels = set(header_labels)
        for message in self.messages:
            self._check_references(
                message.fields, header_labels + message.field_labels(), scope=message.name
            )
            all_labels.update(message.field_labels())
        for label, decl in self.types.items():
            if decl.function is None:
                continue
            for argument in decl.function.arguments:
                if argument and argument not in all_labels:
                    raise MDLSpecificationError(
                        f"type declaration '{label}' of MDL {self.protocol} references "
                        f"unknown field '{argument}' in {decl.function.render()}"
                    )

    def _check_references(
        self, fields: Sequence[FieldSpec], visible: Sequence[str], scope: str
    ) -> None:
        seen: List[str] = []
        for spec in fields:
            if spec.size.kind is SizeKind.FIELD_REFERENCE:
                reference = spec.size.reference
                if reference not in visible and reference not in seen:
                    raise MDLSpecificationError(
                        f"field '{spec.label}' in {scope} of MDL {self.protocol} has size "
                        f"referencing unknown field '{reference}'"
                    )
            seen.append(spec.label)

"""Generic parser and composer for binary MDL specifications.

These are the runtime interpreters of Section IV-A for binary protocols
such as SLP (Fig. 7) and DNS/Bonjour.  Neither class contains any
protocol-specific code: all protocol knowledge comes from the
:class:`~repro.core.mdl.spec.MDLSpec` loaded at construction time, the
pluggable marshallers of the type registry, and the field functions.

Parsing walks the header field specs in order, decoding each field with the
marshaller of its declared type and the length given by its size spec
(fixed bits, a byte count read from an earlier length field, the message
remainder, or a self-describing encoding).  The message body spec is then
selected with the header ``<Rule>`` (e.g. ``FunctionID=1``) and parsed the
same way.

Composing resolves every field's value (explicit value from the abstract
message, rule constant, field-function result, or a type-appropriate
default), measures marshalled lengths so that length fields and
``f-length``/``f-total-length`` functions can be filled in automatically,
and then writes all fields in specification order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ComposeError, ParseError
from ..message import AbstractMessage
from ..typesys import BitBuffer, Marshaller
from .base import MessageComposer, MessageParser
from .functions import FieldFunctionContext
from .spec import FieldSpec, MessageSpec, SizeKind

__all__ = ["BinaryMessageParser", "BinaryMessageComposer"]


class BinaryMessageParser(MessageParser):
    """Interprets a binary MDL to parse byte arrays into abstract messages."""

    def parse(self, data: bytes) -> AbstractMessage:
        if self.spec.header is None:
            raise ParseError(f"MDL for {self.spec.protocol} has no header section")
        buffer = BitBuffer(data)
        values: Dict[str, Any] = {}
        ordered: List[Tuple[str, Any]] = []
        try:
            for field_spec in self.spec.header.fields:
                value = self._parse_field(buffer, field_spec, values)
                values[field_spec.label] = value
                ordered.append((field_spec.label, value))
            message_spec = self.spec.select_message(values)
            for field_spec in message_spec.fields:
                value = self._parse_field(buffer, field_spec, values)
                values[field_spec.label] = value
                ordered.append((field_spec.label, value))
        except ParseError:
            raise
        except Exception as exc:
            raise ParseError(
                f"failed to parse {self.spec.protocol} message: {exc}"
            ) from exc

        message = AbstractMessage(
            message_spec.name,
            mandatory=message_spec.mandatory_fields,
            protocol=self.spec.protocol,
        )
        for label, value in ordered:
            message.set(label, value, type_name=self.spec.type_of(label))
        return message

    # ------------------------------------------------------------------
    def _parse_field(
        self, buffer: BitBuffer, field_spec: FieldSpec, values: Dict[str, Any]
    ) -> Any:
        marshaller = self.types.get(self.spec.type_of(field_spec.label))
        length_bits = self._length_bits(field_spec, values)
        try:
            return marshaller.unmarshal(buffer, length_bits)
        except Exception as exc:
            raise ParseError(
                f"cannot decode field '{field_spec.label}' of {self.spec.protocol}: {exc}"
            ) from exc

    def _length_bits(self, field_spec: FieldSpec, values: Dict[str, Any]) -> Optional[int]:
        size = field_spec.size
        if size.kind is SizeKind.FIXED_BITS:
            return size.bits
        if size.kind is SizeKind.FIELD_REFERENCE:
            reference_value = values.get(size.reference)
            if reference_value is None:
                raise ParseError(
                    f"field '{field_spec.label}' needs length field '{size.reference}' "
                    "which has not been parsed yet"
                )
            try:
                return int(reference_value) * 8
            except (TypeError, ValueError) as exc:
                raise ParseError(
                    f"length field '{size.reference}' holds non-numeric value "
                    f"{reference_value!r}"
                ) from exc
        if size.kind in (SizeKind.REMAINDER, SizeKind.SELF_DESCRIBING):
            return None
        raise ParseError(
            f"binary MDL for {self.spec.protocol} cannot use delimiter-sized field "
            f"'{field_spec.label}'"
        )


class BinaryMessageComposer(MessageComposer):
    """Interprets a binary MDL to compose abstract messages into bytes."""

    def compose(self, message: AbstractMessage) -> bytes:
        if self.spec.header is None:
            raise ComposeError(f"MDL for {self.spec.protocol} has no header section")
        try:
            message_spec = self.spec.message(message.name)
        except Exception as exc:
            raise ComposeError(str(exc)) from exc

        all_fields = list(self.spec.header.fields) + list(message_spec.fields)
        values = self._resolve_values(message, message_spec, all_fields)
        lengths = self._measure_lengths(all_fields, values)
        self._apply_functions(all_fields, values, lengths, total_length_bits=None)
        self._synchronise_length_fields(all_fields, values, lengths)
        total_bits = sum(lengths[field_spec.label] for field_spec in all_fields)
        self._apply_functions(all_fields, values, lengths, total_length_bits=total_bits)

        buffer = BitBuffer()
        for field_spec in all_fields:
            marshaller = self.types.get(self.spec.type_of(field_spec.label))
            length_bits = (
                field_spec.size.bits
                if field_spec.size.kind is SizeKind.FIXED_BITS
                else None
            )
            try:
                marshaller.marshal(values[field_spec.label], buffer, length_bits)
            except Exception as exc:
                raise ComposeError(
                    f"cannot encode field '{field_spec.label}' of message "
                    f"'{message.name}': {exc}"
                ) from exc
        return buffer.to_bytes()

    # ------------------------------------------------------------------
    def _resolve_values(
        self,
        message: AbstractMessage,
        message_spec: MessageSpec,
        all_fields: List[FieldSpec],
    ) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        rule = message_spec.rule
        for field_spec in all_fields:
            label = field_spec.label
            marshaller = self.types.get(self.spec.type_of(label))
            if message.has(label):
                values[label] = message.get(label)
            elif rule is not None and label == rule.field_label:
                values[label] = marshaller.from_text(rule.value)
            else:
                values[label] = self._default_for(marshaller)
        return values

    @staticmethod
    def _default_for(marshaller: Marshaller) -> Any:
        if marshaller.python_type is int:
            return 0
        if marshaller.python_type is bool:
            return False
        if marshaller.python_type is bytes:
            return b""
        return ""

    def _measure_lengths(
        self, all_fields: List[FieldSpec], values: Dict[str, Any]
    ) -> Dict[str, int]:
        lengths: Dict[str, int] = {}
        for field_spec in all_fields:
            marshaller = self.types.get(self.spec.type_of(field_spec.label))
            if field_spec.size.kind is SizeKind.FIXED_BITS:
                lengths[field_spec.label] = field_spec.size.bits
            else:
                lengths[field_spec.label] = marshaller.wire_length_bits(
                    values[field_spec.label]
                )
        return lengths

    def _apply_functions(
        self,
        all_fields: List[FieldSpec],
        values: Dict[str, Any],
        lengths: Dict[str, int],
        total_length_bits: Optional[int],
    ) -> None:
        context = FieldFunctionContext(values, lengths, total_length_bits)
        for field_spec in all_fields:
            function = self.spec.function_of(field_spec.label)
            if function is None:
                continue
            if function.name == "f-total-length" and total_length_bits is None:
                continue
            values[field_spec.label] = self.functions.evaluate(
                function.name, context, function.arguments
            )

    def _synchronise_length_fields(
        self,
        all_fields: List[FieldSpec],
        values: Dict[str, Any],
        lengths: Dict[str, int],
    ) -> None:
        """Fill length-prefix fields referenced by other fields' size specs.

        When a field's size references another field (``<SRVType>SRVTypeLength</SRVType>``)
        and that length field carries no explicit value and no field function,
        the composer writes the measured byte length automatically so that the
        produced message is self-consistent.

        Length-prefix fields count whole bytes on the wire, so a referenced
        data field whose marshalled length is not byte-aligned cannot be
        described by its length field — that raises :class:`ComposeError`
        instead of silently truncating.  Likewise a length field referenced
        by two different data fields is ambiguous (the last write would
        silently win) and raises :class:`ComposeError`.
        """
        written: Dict[str, str] = {}
        for field_spec in all_fields:
            if field_spec.size.kind is not SizeKind.FIELD_REFERENCE:
                continue
            reference = field_spec.size.reference
            if self.spec.function_of(reference) is not None:
                continue
            bits = lengths[field_spec.label]
            if bits % 8 != 0:
                raise ComposeError(
                    f"field '{field_spec.label}' marshals to {bits} bits, which is "
                    f"not byte-aligned; its length field '{reference}' counts bytes"
                )
            if reference in written:
                raise ComposeError(
                    f"length field '{reference}' is referenced by both "
                    f"'{written[reference]}' and '{field_spec.label}'; a shared "
                    "length prefix is ambiguous"
                )
            written[reference] = field_spec.label
            values[reference] = bits // 8

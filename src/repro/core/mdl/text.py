"""Generic parser and composer for text MDL specifications.

Text protocols such as SSDP and HTTP (Fig. 11 of the paper) have no fixed
field layout; instead the MDL identifies *field boundaries*: the header
line is a sequence of delimiter-terminated tokens (``<Method>32</Method>``
means "terminated by the character with code 32", i.e. a space), and the
``<Fields>`` directive (``13,10:58``) says that the remaining lines are
separated by CR LF and that each line splits on a colon into a field label
(left) and field value (right).

A message body — the part after the blank line, used by HTTP responses —
is described by a field whose size is the remainder (``*``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ComposeError, ParseError
from ..message import AbstractMessage, PrimitiveField
from .base import MessageComposer, MessageParser
from .spec import FieldSpec, MessageSpec, SizeKind

__all__ = ["TextMessageParser", "TextMessageComposer"]

_ENCODING = "utf-8"


class TextMessageParser(MessageParser):
    """Interprets a text MDL to parse byte arrays into abstract messages."""

    def parse(self, data: bytes) -> AbstractMessage:
        if self.spec.header is None:
            raise ParseError(f"MDL for {self.spec.protocol} has no header section")
        try:
            text = data.decode(_ENCODING)
        except UnicodeDecodeError as exc:
            raise ParseError(
                f"{self.spec.protocol} message is not valid {_ENCODING} text"
            ) from exc

        position = 0
        values: Dict[str, Any] = {}
        ordered: List[Tuple[str, Any]] = []
        body_spec: Optional[FieldSpec] = None

        for field_spec in self.spec.header.fields:
            if field_spec.size.kind is SizeKind.REMAINDER:
                body_spec = field_spec
                continue
            if field_spec.size.kind is not SizeKind.DELIMITER:
                raise ParseError(
                    f"text MDL for {self.spec.protocol} requires delimiter sizes; "
                    f"field '{field_spec.label}' uses {field_spec.size.kind.value}"
                )
            token, position = self._read_token(
                text, position, field_spec.size.delimiter_codes, field_spec.label
            )
            value = self._convert(field_spec.label, token)
            values[field_spec.label] = value
            ordered.append((field_spec.label, value))

        directive = self.spec.header.fields_directive
        body_text = ""
        if directive is not None:
            outer = directive.outer_delimiter
            separator = directive.inner_separator
            remainder = text[position:]
            lines = remainder.split(outer)
            consumed_lines = 0
            for line in lines:
                consumed_lines += 1
                if line == "":
                    # Blank line: end of the field section, body follows.
                    break
                if separator not in line:
                    continue
                label, _, raw_value = line.partition(separator)
                label = label.strip()
                value = self._convert(label, raw_value.strip())
                values[label] = value
                ordered.append((label, value))
            body_text = outer.join(lines[consumed_lines:])
        else:
            body_text = text[position:]

        try:
            message_spec = self.spec.select_message(values)
        except Exception as exc:
            raise ParseError(str(exc)) from exc

        if body_spec is None:
            body_spec = next(
                (
                    f
                    for f in message_spec.fields
                    if f.size.kind is SizeKind.REMAINDER
                ),
                None,
            )
        if body_spec is not None:
            values[body_spec.label] = body_text
            ordered.append((body_spec.label, body_text))

        message = AbstractMessage(
            message_spec.name,
            mandatory=message_spec.mandatory_fields,
            protocol=self.spec.protocol,
        )
        for label, value in ordered:
            message.set(label, value, type_name=self.spec.type_of(label))
        return message

    # ------------------------------------------------------------------
    def _read_token(
        self, text: str, position: int, delimiter_codes: Tuple[int, ...], label: str
    ) -> Tuple[str, int]:
        delimiter = "".join(chr(code) for code in delimiter_codes)
        index = text.find(delimiter, position)
        if index < 0:
            raise ParseError(
                f"delimiter {delimiter!r} for field '{label}' not found in "
                f"{self.spec.protocol} message"
            )
        return text[position:index], index + len(delimiter)

    def _convert(self, label: str, token: str) -> Any:
        type_name = self.spec.type_of(label)
        if self.types.has(type_name):
            try:
                return self.types.get(type_name).from_text(token)
            except Exception:
                return token
        return token


class TextMessageComposer(MessageComposer):
    """Interprets a text MDL to compose abstract messages into bytes."""

    def compose(self, message: AbstractMessage) -> bytes:
        if self.spec.header is None:
            raise ComposeError(f"MDL for {self.spec.protocol} has no header section")
        try:
            message_spec = self.spec.message(message.name)
        except Exception as exc:
            raise ComposeError(str(exc)) from exc

        parts: List[str] = []
        consumed_labels: set[str] = set()
        body_label: Optional[str] = None

        for field_spec in self.spec.header.fields:
            if field_spec.size.kind is SizeKind.REMAINDER:
                body_label = field_spec.label
                continue
            value = self._header_value(message, message_spec, field_spec)
            parts.append(self._render(field_spec.label, value))
            parts.append("".join(chr(code) for code in field_spec.size.delimiter_codes))
            consumed_labels.add(field_spec.label)

        directive = self.spec.header.fields_directive
        body_value = ""
        if body_label is None:
            body_label = next(
                (
                    f.label
                    for f in message_spec.fields
                    if f.size.kind is SizeKind.REMAINDER
                ),
                None,
            )
        if body_label is not None:
            consumed_labels.add(body_label)
            body_value = self._render(body_label, message.get(body_label, ""))

        if directive is not None:
            outer = directive.outer_delimiter
            separator = directive.inner_separator
            emitted: set[str] = set()
            # Declared message fields first (specification order), then any
            # extra primitive fields carried by the abstract message.
            declared = [
                f.label
                for f in message_spec.fields
                if f.size.kind is not SizeKind.REMAINDER
            ]
            extra = [
                field.label
                for field in message.fields
                if isinstance(field, PrimitiveField)
                and field.label not in consumed_labels
                and field.label not in declared
            ]
            for label in declared + extra:
                if label in emitted or label in consumed_labels:
                    continue
                if not message.has(label):
                    continue
                value = self._render(label, message.get(label))
                parts.append(f"{label}{separator} {value}{outer}")
                emitted.add(label)
            parts.append(outer)

        if body_value:
            parts.append(body_value)
        return "".join(parts).encode(_ENCODING)

    # ------------------------------------------------------------------
    def _header_value(
        self,
        message: AbstractMessage,
        message_spec: MessageSpec,
        field_spec: FieldSpec,
    ) -> Any:
        if message.has(field_spec.label):
            return message.get(field_spec.label)
        rule = message_spec.rule
        if rule is not None and rule.field_label == field_spec.label:
            return rule.value
        return ""

    def _render(self, label: str, value: Any) -> str:
        type_name = self.spec.type_of(label)
        if self.types.has(type_name):
            return self.types.get(type_name).to_text(value)
        return "" if value is None else str(value)

"""Load and save MDL specifications as XML documents.

The Starlink prototype stores its models as XML (Figs. 7, 8 and 11 of the
paper).  This module provides the XML form of our MDL model so that
specifications can be shipped as data files and loaded at runtime, exactly
like the paper's framework does, while the rest of the library works with
the typed :class:`~repro.core.mdl.spec.MDLSpec` objects.

Document shape (matching Fig. 7 / Fig. 11 as closely as XML well-formedness
allows)::

    <MDL protocol="SLP" kind="binary">
      <Types>
        <Version>Integer</Version>
        <URLLength>Integer[f-length(URLEntry)]</URLLength>
      </Types>
      <Header type="SLP">
        <Version>8</Version>
        <FunctionID>8</FunctionID>
        ...
      </Header>
      <Message type="SLPSrvRequest">
        <Rule>FunctionID=1</Rule>
        <Mandatory>SRVType, XID</Mandatory>
        <SRVTypeLength>16</SRVTypeLength>
        <SRVType>SRVTypeLength</SRVType>
      </Message>
    </MDL>

Inside ``<Header>`` the special child ``<Fields>`` is the Fig. 11 field
boundary directive for text MDLs.  Inside ``<Message>``, ``<Rule>`` and
``<Mandatory>`` are directives; every other child is a field.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from typing import Dict, Tuple, Union

from ..errors import MDLSpecificationError
from .spec import (
    FieldSpec,
    FieldsDirective,
    HeaderSpec,
    MDLKind,
    MDLSpec,
    MessageRule,
    MessageSpec,
    SizeSpec,
)

__all__ = ["load_mdl", "loads_mdl", "dump_mdl", "dumps_mdl", "clear_mdl_cache"]

_DIRECTIVES = {"Rule", "Mandatory"}

#: ``load_mdl`` memoisation: absolute path -> ((mtime_ns, size), spec).
#: Deployments load the same spec files repeatedly (one bridge per case,
#: several cases per evaluation run); re-parsing the XML each time is pure
#: waste, and handing out the *same* spec object also shares its compiled
#: codec cache.  The stat pair invalidates the entry when the file changes.
_LOAD_CACHE: Dict[str, Tuple[Tuple[int, int], MDLSpec]] = {}


def loads_mdl(document: str) -> MDLSpec:
    """Parse an MDL specification from an XML string."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise MDLSpecificationError(f"malformed MDL XML: {exc}") from exc
    return _from_element(root)


def load_mdl(path: Union[str, "os.PathLike[str]"]) -> MDLSpec:
    """Parse an MDL specification from an XML file.

    Memoised on ``(path, mtime, size)``: repeated loads of an unchanged
    file return the same shared :class:`MDLSpec` object.  Specs are
    read-only once deployed, so sharing is safe; callers that intend to
    mutate a loaded spec should mutate before deploying and call
    :meth:`MDLSpec.invalidate_codecs` (or load via :func:`loads_mdl`,
    which never shares).
    """
    key = os.path.abspath(os.fspath(path))
    try:
        stat = os.stat(key)
        stamp = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        stamp = None
    if stamp is not None:
        cached = _LOAD_CACHE.get(key)
        if cached is not None and cached[0] == stamp:
            return cached[1]
    with open(path, "r", encoding="utf-8") as handle:
        spec = loads_mdl(handle.read())
    if stamp is not None:
        _LOAD_CACHE[key] = (stamp, spec)
    return spec


def clear_mdl_cache() -> None:
    """Drop all memoised :func:`load_mdl` entries (tests, hot reload)."""
    _LOAD_CACHE.clear()


def dumps_mdl(spec: MDLSpec) -> str:
    """Serialise an MDL specification to an XML string."""
    root = _to_element(spec)
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def dump_mdl(spec: MDLSpec, path: Union[str, "os.PathLike[str]"]) -> None:  # noqa: F821
    """Serialise an MDL specification to an XML file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_mdl(spec))


# ----------------------------------------------------------------------
# XML -> model
# ----------------------------------------------------------------------
def _from_element(root: ET.Element) -> MDLSpec:
    if root.tag != "MDL":
        raise MDLSpecificationError(f"expected <MDL> root element, got <{root.tag}>")
    protocol = root.get("protocol", "")
    kind_text = root.get("kind", "binary")
    try:
        kind = MDLKind(kind_text)
    except ValueError:
        raise MDLSpecificationError(f"unknown MDL kind {kind_text!r}") from None
    spec = MDLSpec(protocol=protocol, kind=kind)

    types_element = root.find("Types")
    if types_element is not None:
        for child in types_element:
            spec.add_type(child.tag, (child.text or "").strip())

    header_element = root.find("Header")
    if header_element is not None:
        header = HeaderSpec(protocol=header_element.get("type", protocol))
        for child in header_element:
            text = (child.text or "").strip()
            if child.tag == "Fields":
                header.fields_directive = FieldsDirective.parse(text)
            else:
                header.fields.append(FieldSpec(child.tag, SizeSpec.parse(text)))
        spec.header = header

    for message_element in root.findall("Message"):
        message = MessageSpec(name=message_element.get("type", ""))
        if not message.name:
            raise MDLSpecificationError("every <Message> element needs a type attribute")
        for child in message_element:
            text = (child.text or "").strip()
            if child.tag == "Rule":
                message.rule = MessageRule.parse(text)
            elif child.tag == "Mandatory":
                message.mandatory_fields = [
                    part.strip() for part in text.split(",") if part.strip()
                ]
            else:
                message.fields.append(FieldSpec(child.tag, SizeSpec.parse(text)))
        spec.add_message(message)

    spec.validate()
    return spec


# ----------------------------------------------------------------------
# model -> XML
# ----------------------------------------------------------------------
def _to_element(spec: MDLSpec) -> ET.Element:
    root = ET.Element("MDL", {"protocol": spec.protocol, "kind": spec.kind.value})
    if spec.types:
        types_element = ET.SubElement(root, "Types")
        for label, decl in spec.types.items():
            entry = ET.SubElement(types_element, label)
            entry.text = decl.render()
    if spec.header is not None:
        header_element = ET.SubElement(root, "Header", {"type": spec.header.protocol})
        for field_spec in spec.header.fields:
            entry = ET.SubElement(header_element, field_spec.label)
            entry.text = field_spec.size.render()
        if spec.header.fields_directive is not None:
            entry = ET.SubElement(header_element, "Fields")
            entry.text = spec.header.fields_directive.render()
    for message in spec.messages:
        message_element = ET.SubElement(root, "Message", {"type": message.name})
        if message.rule is not None:
            rule_element = ET.SubElement(message_element, "Rule")
            rule_element.text = message.rule.render()
        if message.mandatory_fields:
            mandatory_element = ET.SubElement(message_element, "Mandatory")
            mandatory_element.text = ", ".join(message.mandatory_fields)
        for field_spec in message.fields:
            entry = ET.SubElement(message_element, field_spec.label)
            entry.text = field_spec.size.render()
    return root


def _indent(element: ET.Element, level: int = 0) -> None:
    """Pretty-print helper (ElementTree.indent exists only on 3.9+ as a function)."""
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad

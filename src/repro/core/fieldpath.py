"""Field path expressions over abstract messages.

The Java prototype described in Section IV of the paper stores abstract
messages as objects conforming to an XML schema and uses **XPath**
expressions (Fig. 8) to read and write field values from translation logic,
e.g.::

    /field/primitiveField[label='ST']/value

This module provides the equivalent facility for our Python abstract
messages.  Two syntaxes are accepted and normalised to the same internal
form:

* the paper's XPath style shown above (only the subset that addresses
  fields by label is supported — which is all the paper uses), and
* a concise dotted style, e.g. ``ST`` or ``URL.port``.

A :class:`FieldPath` can *resolve* (read) a value from a message and
*assign* (write) a value into a message, creating the primitive field if it
does not exist yet — the behaviour the translation engine needs when it
fills in the fields of an outgoing message.
"""

from __future__ import annotations

import re
from typing import Any, List

from .errors import FieldNotFoundError, MessageError
from .message import AbstractMessage, PrimitiveField, StructuredField

__all__ = ["FieldPath", "parse_xpath", "to_xpath"]


_XPATH_STEP = re.compile(
    r"(?:primitiveField|structuredField|field)\[label='(?P<label>[^']*)'\]"
)


def parse_xpath(expression: str) -> List[str]:
    """Extract the sequence of field labels from an XPath-style expression.

    Only the label-addressing subset used by the paper is supported: steps
    of the form ``primitiveField[label='X']`` or ``structuredField[label='X']``.
    A trailing ``/value`` step is accepted and ignored (it is implicit).
    """
    labels = [m.group("label") for m in _XPATH_STEP.finditer(expression)]
    if not labels:
        raise MessageError(f"unsupported XPath expression: {expression!r}")
    return labels


def to_xpath(labels: List[str]) -> str:
    """Render a label sequence back into the paper's XPath style."""
    steps = "/".join(f"primitiveField[label='{label}']" for label in labels)
    return f"/field/{steps}/value"


class FieldPath:
    """A resolved path addressing one field of an abstract message."""

    def __init__(self, expression: str) -> None:
        expression = expression.strip()
        self.expression = expression
        if expression.startswith("/"):
            self.labels = parse_xpath(expression)
        else:
            if not expression:
                raise MessageError("empty field path")
            self.labels = expression.split(".")

    # ------------------------------------------------------------------
    @property
    def dotted(self) -> str:
        """The dotted form of the path (``URL.port``)."""
        return ".".join(self.labels)

    @property
    def xpath(self) -> str:
        """The XPath form of the path, as in Fig. 8 of the paper."""
        return to_xpath(self.labels)

    # ------------------------------------------------------------------
    def resolve(self, message: AbstractMessage) -> Any:
        """Return the value of the addressed field in ``message``."""
        return message[self.dotted]

    def exists(self, message: AbstractMessage) -> bool:
        return message.has(self.dotted)

    def assign(
        self,
        message: AbstractMessage,
        value: Any,
        type_name: str = "String",
    ) -> None:
        """Write ``value`` into ``message`` at this path.

        Structured intermediate fields are created as needed; an existing
        primitive field keeps its declared type unless the field is new.
        """
        dotted = self.dotted
        if message.has(dotted):
            field = message.field(dotted)
            if isinstance(field, StructuredField):
                raise MessageError(
                    f"cannot assign a value to structured field '{dotted}' "
                    f"of message '{message.name}'"
                )
            field.value = value
            return
        # Build missing intermediate structured fields, then the leaf.
        if len(self.labels) == 1:
            message.set(dotted, value, type_name=type_name)
            return
        parent: Any = message
        for label in self.labels[:-1]:
            if isinstance(parent, AbstractMessage):
                existing = parent._find(label)  # noqa: SLF001 - internal by design
                if existing is None:
                    existing = StructuredField(label)
                    parent.add_field(existing)
            else:
                if parent.has(label):
                    existing = parent.get(label)
                else:
                    existing = StructuredField(label)
                    parent.add(existing)
            if isinstance(existing, PrimitiveField):
                raise MessageError(
                    f"field '{label}' of message '{message.name}' is primitive; "
                    f"cannot descend into it for path '{dotted}'"
                )
            parent = existing
        parent.add(PrimitiveField(self.labels[-1], type_name, None, value))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldPath):
            return NotImplemented
        return self.labels == other.labels

    def __hash__(self) -> int:
        return hash(tuple(self.labels))

    def __repr__(self) -> str:
        return f"FieldPath({self.dotted!r})"

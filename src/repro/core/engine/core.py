"""The worker-facing engine API used by the sharded runtime.

:class:`~repro.core.engine.automata_engine.AutomataEngine` historically
exposed exactly one entry point — ``on_datagram`` — which parsed, routed
and executed in a single step.  The sharded runtime of
:mod:`repro.runtime` needs those steps separately: the
:class:`~repro.runtime.router.ShardRouter` parses a datagram *once* at the
edge, derives the session's routing key from it, picks the owning worker,
and only then hands the already-parsed message to that worker's engine.

:class:`EngineCore` names that contract.  An implementation executes one
read-only merged automaton and multiplexes sessions over it:

* :meth:`classify` turns raw bytes plus the destination endpoint into the
  owning component automaton and the parsed abstract message;
* :meth:`routing_key` exposes the session-correlation key of a
  client-facing message (``None`` for upstream legs, which are routed by
  reply token or waiting-session matching inside the worker);
* :meth:`dispatch` delivers a parsed message to the session it belongs to
  and advances the automaton, reporting whether any session consumed it —
  which is what lets a router fan a multicast datagram out across workers
  and count it unrouted only when *no* worker claimed it;
* :meth:`has_session` lets the router prune sticky routing entries whose
  session has completed.

``on_datagram`` remains the single-engine fast path and is expressed as
``classify`` + ``dispatch``, so the standalone engine and the sharded
workers execute the same code.

Threading contract: :meth:`classify` and :meth:`routing_key` are pure with
respect to session state and safe to call from any thread (the live shard
router classifies on socket receiver threads); :meth:`dispatch` and
:meth:`has_session` touch the session table and must be serialised per
engine — the simulation's event queue does this implicitly, the live
runtime does it with one event-loop thread (plus lock) per worker.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Tuple

from ...network.addressing import Endpoint
from ...network.engine import NetworkEngine
from ..message import AbstractMessage
from .session import SessionContext, SessionRecord

__all__ = ["EngineCore"]


class EngineCore:
    """Abstract worker-facing surface of a session-multiplexing engine."""

    # -- datagram pipeline ------------------------------------------------
    def classify(
        self,
        data: bytes,
        destination: Endpoint,
        now: float = 0.0,
        counters: Optional[Any] = None,
        trace: int = 0,
    ) -> Optional[Tuple[str, AbstractMessage]]:
        """Parse ``data`` addressed to ``destination``.

        Returns ``(automaton_name, message)`` or ``None`` when no component
        automaton owns the destination or no candidate parser accepts the
        bytes (parse failures are recorded with timestamp ``now``).

        ``counters`` redirects the classify outcome counters
        (``discriminator_hits``/``discriminator_misses``/
        ``garbage_rejects`` and the ``parse_failures`` list) to another
        owner: a shard router classifying at the edge passes itself, so
        edge outcomes are charged to the router and the per-worker/router
        counters stay a conserved sum.  ``trace`` is the datagram's
        :mod:`repro.obs` trace id (span attribution for the parse stage).
        """
        raise NotImplementedError

    def routing_key(
        self, automaton_name: str, message: AbstractMessage, source: Endpoint
    ) -> Optional[Hashable]:
        """Session key of a client-facing message, ``None`` for other legs."""
        raise NotImplementedError

    def dispatch(
        self,
        engine: NetworkEngine,
        automaton_name: str,
        message: AbstractMessage,
        source: Endpoint,
        count_unrouted: bool = True,
        strict: bool = False,
        trace: int = 0,
    ) -> bool:
        """Deliver an already-parsed message; return True when consumed.

        ``strict`` restricts upstream-reply matching to exact evidence
        (reply token or client-host match) and skips the FIFO
        waiting-session fallback — routers fan out in a strict first pass
        so a worker cannot steal another shard's response, then retry
        leniently.  With ``count_unrouted`` false the engine leaves its
        drop counter alone and lets the caller aggregate instead.
        ``trace`` carries the datagram's :mod:`repro.obs` trace id into
        the dispatch/transition/translate/compose spans.
        """
        raise NotImplementedError

    # -- session visibility ----------------------------------------------
    def has_session(self, key: Any) -> bool:
        """Whether a session under ``key`` is currently in flight."""
        raise NotImplementedError

    @property
    def active_sessions(self) -> List[SessionContext]:
        raise NotImplementedError

    # Implementations also expose the statistics the runtime aggregates:
    # ``sessions`` / ``evicted_sessions`` (lists of SessionRecord),
    # ``unrouted_datagrams`` / ``ignored_datagrams`` (ints) and
    # ``parse_failures`` (list of (time, automaton, error) tuples).
    sessions: List[SessionRecord]
    evicted_sessions: List[SessionRecord]

"""Network-layer λ-actions executed on δ-transitions.

The paper's δ-transitions carry a sequence ``{λ}`` of actions performed at
the network layer while crossing from one protocol to another.  The example
used throughout the paper is ``set_host(host, port)``: the address of the
HTTP server is only known from the content of the SSDP response, so the
δ-transition extracts those fields and points the next TCP connection at
them (Fig. 5, line 11).

Actions are registered by name so new network-layer behaviours can be
plugged in at runtime, like marshallers and translation functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Sequence

from ..automata.merge import DeltaTransition
from ..errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .automata_engine import AutomataEngine

__all__ = ["ActionRegistry", "default_action_registry"]


#: An action handler receives the executing engine, the δ-transition being
#: crossed, and the already-resolved argument values.
ActionHandler = Callable[["AutomataEngine", DeltaTransition, List[Any]], None]


class ActionRegistry:
    """Runtime-extensible registry of λ-action handlers."""

    def __init__(self) -> None:
        self._handlers: Dict[str, ActionHandler] = {}

    def register(self, name: str, handler: ActionHandler) -> None:
        self._handlers[name] = handler

    def has(self, name: str) -> bool:
        return name in self._handlers

    def names(self) -> list[str]:
        return sorted(self._handlers)

    def execute(
        self,
        name: str,
        engine: "AutomataEngine",
        delta: DeltaTransition,
        values: Sequence[Any],
    ) -> None:
        try:
            handler = self._handlers[name]
        except KeyError:
            raise EngineError(f"unknown lambda-action '{name}'") from None
        handler(engine, delta, list(values))

    def register_defaults(self) -> "ActionRegistry":
        self.register("set_host", _set_host)
        self.register("noop", _noop)
        return self


def default_action_registry() -> ActionRegistry:
    """Return a fresh registry with the built-in λ-actions."""
    return ActionRegistry().register_defaults()


# ----------------------------------------------------------------------
def _set_host(engine: "AutomataEngine", delta: DeltaTransition, values: List[Any]) -> None:
    """``set_host(host, port)`` — aim the next connection of the target automaton.

    The first argument is the host (an IP address, a host name, or a full
    URL from which the host is extracted); the optional second argument is
    the port (defaults to the target automaton's colour port).  When a
    session is being advanced the destination applies to that session only,
    so concurrent sessions crossing the same δ-transition never clobber
    each other's next hop.
    """
    if not values:
        raise EngineError("set_host needs at least a host argument")
    host = str(values[0])
    if "://" in host:
        from urllib.parse import urlparse

        parsed = urlparse(host)
        port = parsed.port
        host = parsed.hostname or host
        if port is not None and len(values) < 2:
            values = [host, port]
    port_value = None
    if len(values) > 1 and values[1] not in (None, "", 0):
        try:
            port_value = int(values[1])
        except (TypeError, ValueError):
            raise EngineError(f"set_host port argument {values[1]!r} is not an integer") from None
    engine.force_destination(delta.target_automaton, host, port_value)


def _noop(engine: "AutomataEngine", delta: DeltaTransition, values: List[Any]) -> None:
    """An action that does nothing (useful in tests and as a placeholder)."""

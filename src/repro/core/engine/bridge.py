"""The top-level Starlink runtime API.

A :class:`StarlinkBridge` packages everything needed to connect two (or
more) heterogeneous legacy systems at runtime:

* the MDL specifications of the protocols involved,
* their k-coloured automata,
* the merged automaton and translation logic describing the bridge,

validates the merge constraints, and deploys the resulting
:class:`~repro.core.engine.automata_engine.AutomataEngine` onto a network
engine.  This mirrors the deployment story of Section IV: the framework is
dropped into the network, the models are loaded, and the legacy
applications interoperate without being aware of the bridge.

Bridges can be built programmatically (see :mod:`repro.bridges.specs` for
the paper's six discovery cases) or loaded entirely from XML documents with
:meth:`StarlinkBridge.from_xml`, which is the paper's "models are data"
workflow.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ...network.engine import NetworkEngine
from ...obs.tracing import Tracer
from ..automata.colored import ColoredAutomaton
from ..automata.merge import MergedAutomaton, derive_equivalence
from ..automata.xml_loader import loads_automaton
from ..errors import ConfigurationError
from ..mdl.spec import MDLSpec
from ..mdl.xml_loader import loads_mdl
from ..translation.xml_loader import loads_bridge
from .actions import ActionRegistry
from .automata_engine import DEFAULT_SESSION_TIMEOUT, AutomataEngine
from .session import SessionCorrelator, SessionRecord

__all__ = ["StarlinkBridge"]


class StarlinkBridge:
    """A deployable interoperability bridge between heterogeneous protocols."""

    def __init__(
        self,
        merged: MergedAutomaton,
        mdl_specs: Mapping[str, MDLSpec],
        host: str = "starlink.bridge",
        base_port: int = 41000,
        processing_delay: float = 0.0,
        actions: Optional[ActionRegistry] = None,
        correlator: Optional[SessionCorrelator] = None,
        session_timeout: Optional[float] = DEFAULT_SESSION_TIMEOUT,
        ephemeral_ports: bool = True,
        interpreted: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        missing = [name for name in merged.automaton_names if name not in mdl_specs]
        if missing:
            raise ConfigurationError(
                f"missing MDL specifications for automata: {', '.join(missing)}"
            )
        self.merged = merged
        self.mdl_specs: Dict[str, MDLSpec] = dict(mdl_specs)
        self.host = host
        self.base_port = base_port
        self.processing_delay = processing_delay
        self.actions = actions
        #: Session correlation strategy handed to the engine (``None`` keeps
        #: the engine's default source-endpoint correlation).
        self.correlator = correlator
        self.session_timeout = session_timeout
        #: Per-session ephemeral source ports on upstream legs without a
        #: transaction identifier (exact reply attribution).
        self.ephemeral_ports = ephemeral_ports
        #: Force the interpreting MDL codecs and trial-parse classification
        #: instead of the compiled hot path (debug/differential escape hatch).
        self.interpreted = interpreted
        #: Optional :class:`repro.obs.tracing.Tracer` handed to the engine
        #: at deploy time: stage histograms and sampled spans for the
        #: single-engine deployment, same surface as the sharded runtime.
        self.tracer = tracer
        self._engine: Optional[AutomataEngine] = None
        self._network: Optional[NetworkEngine] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_xml(
        cls,
        bridge_document: str,
        automata_documents: Sequence[str],
        mdl_documents: Mapping[str, str],
        **kwargs: object,
    ) -> "StarlinkBridge":
        """Build a bridge purely from XML model documents.

        ``automata_documents`` are ``<ColoredAutomaton>`` documents,
        ``bridge_document`` is the ``<Bridge>`` document referencing them,
        and ``mdl_documents`` maps automaton names to ``<MDL>`` documents.
        """
        automata = [loads_automaton(document) for document in automata_documents]
        merged = loads_bridge(bridge_document, automata)
        specs = {name: loads_mdl(document) for name, document in mdl_documents.items()}
        return cls(merged, specs, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check MDLs and merge constraints before deployment."""
        for name, spec in self.mdl_specs.items():
            spec.validate()
        mandatory = {
            message.name: message.mandatory_fields
            for spec in self.mdl_specs.values()
            for message in spec.messages
        }
        equivalence = derive_equivalence(self.merged.translation, mandatory)
        self.merged.validate(equivalence)

    def deploy(self, network: NetworkEngine, validate: bool = True) -> AutomataEngine:
        """Instantiate the automata engine and attach it to ``network``."""
        if self._engine is not None:
            raise ConfigurationError(f"bridge '{self.merged.name}' is already deployed")
        if validate:
            self.validate()
        if self.tracer is not None:
            # Span timeline positions follow the deployment's clock, as on
            # the sharded runtimes (socket substrates run on wall time).
            live = bool(getattr(network, "kernel_ephemeral_ports", False))
            self.tracer.use_clock(
                network.now, "perf_counter" if live else "virtual"
            )
        engine = AutomataEngine(
            self.merged,
            self.mdl_specs,
            host=self.host,
            base_port=self.base_port,
            processing_delay=self.processing_delay,
            actions=self.actions,
            correlator=self.correlator,
            session_timeout=self.session_timeout,
            ephemeral_ports=self.ephemeral_ports,
            interpreted=self.interpreted,
            tracer=self.tracer,
        )
        network.attach(engine)
        self._engine = engine
        self._network = network
        return engine

    def undeploy(self) -> None:
        """Detach the automata engine from the network."""
        if self._engine is not None and self._network is not None:
            self._network.detach(self._engine)
        self._engine = None
        self._network = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> Optional[AutomataEngine]:
        return self._engine

    @property
    def sessions(self) -> List[SessionRecord]:
        """Completed interoperability sessions (empty before deployment)."""
        return list(self._engine.sessions) if self._engine is not None else []

    @property
    def active_session_count(self) -> int:
        """Number of in-flight (not yet completed) sessions."""
        return len(self._engine.active_sessions) if self._engine is not None else 0

    @property
    def unrouted_datagrams(self) -> int:
        """Datagrams the engine could not route to any session.

        Mirrors :class:`~repro.runtime.runtime.ShardedRuntime`, so the
        evaluation scenarios drive either deployment through one surface.
        """
        return self._engine.unrouted_datagrams if self._engine is not None else 0

    @property
    def ignored_datagrams(self) -> int:
        """Datagrams routed to a session that was not receptive to them."""
        return self._engine.ignored_datagrams if self._engine is not None else 0

    @property
    def protocols(self) -> List[str]:
        return [automaton.protocol for automaton in self.merged.automata.values()]

    def __repr__(self) -> str:
        deployed = "deployed" if self._engine is not None else "not deployed"
        return f"StarlinkBridge({self.merged.name!r}, {deployed})"

"""Per-session runtime state and datagram-to-session correlation.

The Automata Engine of Section IV-B executes the merged automaton for
*live* legacy traffic, and live traffic overlaps: several legacy clients
can be mid-lookup through the same bridge at the same time.  Everything
that is mutable during one client interaction therefore lives in a
:class:`SessionContext` — the ``(automaton, state)`` cursor, the message
instances received and sent so far (the paper's per-state queues), the
δ-transitions already crossed, the peers learnt and the destinations
forced by ``set_host`` λ-actions — while the merged automaton itself stays
a read-only model shared by every session.

Which session an incoming datagram belongs to is decided by a pluggable
:class:`SessionCorrelator`:

* :class:`EndpointCorrelator` (the default) keys sessions on the source
  endpoint of the datagram that opened them — the classic UDP demux;
* :class:`FieldCorrelator` keys on a transaction-identifier field of the
  parsed message (SLP's ``XID``, DNS's ``ID``) when one is present, so a
  client whose address changes between retransmissions still lands in its
  session, and — crucially — so a response arriving from a *service* can
  be correlated back to the session whose translated request carried the
  same identifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Set, Tuple

from ...network.addressing import Endpoint
from ..message import AbstractMessage

__all__ = [
    "SessionRecord",
    "SessionContext",
    "SessionCorrelator",
    "EndpointCorrelator",
    "FieldCorrelator",
]


@dataclass
class SessionRecord:
    """Measurements of one complete interoperability session."""

    started_at: float
    finished_at: float = 0.0
    messages_received: int = 0
    messages_sent: int = 0
    received_names: List[str] = field(default_factory=list)
    sent_names: List[str] = field(default_factory=list)
    #: Endpoint of the legacy client that opened the session.
    client: Optional[Endpoint] = None
    #: Correlation key the session was demultiplexed under.
    session_key: Any = None
    #: True when the session was abandoned by the idle-timeout sweeper.
    evicted: bool = False

    @property
    def translation_time(self) -> float:
        """Paper metric: first message received -> last translated output sent."""
        return max(0.0, self.finished_at - self.started_at)


@dataclass
class SessionContext:
    """All mutable runtime state of one in-flight interoperability session.

    The coloured-automata layer is read-only at runtime: the per-state
    message queues of the paper's history operator live here, keyed by
    ``(automaton, state)``, so concurrent sessions never see each other's
    instances.
    """

    key: Any
    current: Tuple[str, str]
    record: SessionRecord
    client: Optional[Endpoint] = None
    #: Latest instance of every message kind received or sent this session.
    instances: Dict[str, AbstractMessage] = field(default_factory=dict)
    #: δ-transitions already crossed (by identity), to avoid re-taking them.
    taken_deltas: Set[int] = field(default_factory=set)
    #: Per-state message queues: ``(automaton, state) -> stored instances``.
    queues: Dict[Tuple[str, str], List[AbstractMessage]] = field(default_factory=dict)
    #: Peer endpoint learnt from the last message received per automaton.
    peers: Dict[str, Endpoint] = field(default_factory=dict)
    #: Destinations forced by ``set_host`` λ-actions, per automaton.
    forced_destinations: Dict[str, Endpoint] = field(default_factory=dict)
    #: Reply-correlation tokens registered for this session's upstream sends.
    reply_tokens: List[Hashable] = field(default_factory=list)
    #: Per-session ephemeral source endpoints, per automaton: upstream legs
    #: without a transaction identifier send from one of these so the reply
    #: address alone attributes the response exactly (no FIFO fallback).
    ephemeral_sources: Dict[str, Endpoint] = field(default_factory=dict)
    last_activity: float = 0.0
    finished: bool = False
    #: Trace id of the datagram that last advanced this session (see
    #: :mod:`repro.obs`): deliveries into the session inherit it so their
    #: downstream spans (transition, translate, compose) join the tree.
    trace_id: int = 0

    # -- the history operator, per session --------------------------------
    def store(self, automaton: str, state: str, message: AbstractMessage) -> None:
        """Push a message instance onto the session's queue for a state."""
        self.queues.setdefault((automaton, state), []).append(message)

    def stored(
        self, automaton: str, state: str, message_name: Optional[str] = None
    ) -> List[AbstractMessage]:
        """Instances stored at ``(automaton, state)``, optionally by name."""
        queue = self.queues.get((automaton, state), [])
        if message_name is None:
            return list(queue)
        return [msg for msg in queue if msg.name == message_name]

    def latest(
        self, automaton: str, state: str, message_name: Optional[str] = None
    ) -> Optional[AbstractMessage]:
        matching = self.stored(automaton, state, message_name)
        return matching[-1] if matching else None

    def touch(self, now: float) -> None:
        """Record activity (resets the idle-eviction clock)."""
        self.last_activity = now

    def __repr__(self) -> str:
        status = "finished" if self.finished else f"at {self.current}"
        return f"SessionContext(key={self.key!r}, {status})"


class SessionCorrelator:
    """Strategy mapping incoming datagrams to session keys.

    ``client_key`` identifies the session a datagram on the *client-facing*
    automaton belongs to (and the key a new session is opened under);
    ``reply_token`` extracts a transaction token linking an upstream
    request the engine sent to the response it provokes, or ``None`` when
    the protocol carries no such identifier.
    """

    def client_key(self, source: Endpoint, message: AbstractMessage) -> Hashable:
        raise NotImplementedError

    def reply_token(self, message: AbstractMessage) -> Optional[Hashable]:
        return None


class EndpointCorrelator(SessionCorrelator):
    """Correlate purely by the source endpoint of the datagram."""

    def client_key(self, source: Endpoint, message: AbstractMessage) -> Hashable:
        return (source.host, source.port, source.transport)


class FieldCorrelator(EndpointCorrelator):
    """Correlate by a transaction-identifier field when the message has one.

    ``fields`` maps message names to the field label carrying the
    identifier (e.g. ``{"SLP_SrvReq": "XID", "SLP_SrvReply": "XID"}``).
    Request and response tokens match when they share the label and value.
    Messages without a mapped (or present) field fall back to endpoint
    correlation, so one correlator serves mixed-protocol bridges.

    Client keys include the source *host* alongside the identifier:
    identifiers stay stable across a client's port changes
    (retransmission from a fresh ephemeral socket), but two independent
    clients picking the same 16-bit identifier must not collide into one
    session.  Reply tokens cannot include a host — responses arrive from
    the service, not the client — so they carry the identifier alone and
    ambiguity there is resolved FIFO by the engine.
    """

    def __init__(self, fields: Mapping[str, str]) -> None:
        self.fields = dict(fields)

    def _token(self, message: AbstractMessage) -> Optional[Hashable]:
        label = self.fields.get(message.name)
        if label is None or not message.has(label):
            return None
        return (label, message.get(label))

    def client_key(self, source: Endpoint, message: AbstractMessage) -> Hashable:
        token = self._token(message)
        if token is not None:
            return (source.host,) + token
        return super().client_key(source, message)

    def reply_token(self, message: AbstractMessage) -> Optional[Hashable]:
        return self._token(message)

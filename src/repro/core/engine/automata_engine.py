"""The Automata Engine: runtime execution of merged automata.

Section IV-B of the paper: the Automata Engine interprets the loaded
behaviour model — the merged automaton plus its translation logic — and
drives the message parsers/composers and the network engine accordingly.
It reacts to three kinds of states:

* **receiving states** listen for a message on the state colour's network
  endpoint; a parsed message whose name matches an outgoing
  receive-transition is pushed onto the state queue and the automaton
  advances;
* **sending states** construct the outgoing abstract message (filling its
  fields by executing the translation-logic assignments), compose it with
  the MDL composer of the protocol and hand it to the network engine with
  the network semantics of the state colour;
* **bridge (δ) states** neither send nor receive: they execute the λ-actions
  of the δ-transition (e.g. ``set_host``) and move execution to the next
  protocol's automaton.

The engine is implemented as a reactive :class:`~repro.network.engine.NetworkNode`
so the same code runs unchanged on the discrete-event simulation and on the
socket engine.  Each completed client interaction is recorded as a
:class:`SessionRecord`, which is what the performance evaluation measures
(time from the first message received by the framework to the last
translated output sent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ...network.addressing import Endpoint, Transport
from ...network.engine import NetworkEngine, NetworkNode
from ..automata.colored import Action, ColoredAutomaton
from ..automata.merge import DeltaTransition, MergedAutomaton
from ..errors import ConfigurationError, EngineError, ParseError
from ..mdl.base import MessageComposer, MessageParser, create_composer, create_parser
from ..mdl.spec import MDLSpec
from ..message import AbstractMessage
from .actions import ActionRegistry, default_action_registry

__all__ = ["SessionRecord", "ProtocolBinding", "AutomataEngine"]


@dataclass
class SessionRecord:
    """Measurements of one complete interoperability session."""

    started_at: float
    finished_at: float = 0.0
    messages_received: int = 0
    messages_sent: int = 0
    received_names: List[str] = field(default_factory=list)
    sent_names: List[str] = field(default_factory=list)

    @property
    def translation_time(self) -> float:
        """Paper metric: first message received -> last translated output sent."""
        return max(0.0, self.finished_at - self.started_at)


@dataclass
class ProtocolBinding:
    """Per-component-automaton runtime resources."""

    automaton: ColoredAutomaton
    parser: MessageParser
    composer: MessageComposer
    local_endpoint: Endpoint
    #: Destination forced by a ``set_host`` λ-action (overrides peer/colour).
    forced_destination: Optional[Endpoint] = None
    #: Peer endpoint learnt from the last received message on this automaton.
    peer: Optional[Endpoint] = None


class AutomataEngine(NetworkNode):
    """Executes one merged automaton on top of a network engine."""

    def __init__(
        self,
        merged: MergedAutomaton,
        mdl_specs: Mapping[str, MDLSpec],
        host: str = "starlink.bridge",
        base_port: int = 41000,
        actions: Optional[ActionRegistry] = None,
        processing_delay: float = 0.0,
        name: str = "",
    ) -> None:
        """Create an engine for ``merged``.

        ``mdl_specs`` maps each component automaton's *name* to the MDL
        specification of its protocol (used to build the parser and
        composer).  ``processing_delay`` adds a fixed delay (seconds) to
        every outgoing send, modelling the framework's own translation cost
        on the virtual clock of a simulation; it defaults to zero.
        """
        self.merged = merged
        self.name = name or f"starlink:{merged.name}"
        self.host = host
        self.actions = actions if actions is not None else default_action_registry()
        self.processing_delay = processing_delay
        self._bindings: Dict[str, ProtocolBinding] = {}
        port = base_port
        for automaton_name, automaton in merged.automata.items():
            spec = mdl_specs.get(automaton_name)
            if spec is None:
                raise ConfigurationError(
                    f"no MDL specification supplied for automaton '{automaton_name}'"
                )
            color = next(iter(automaton.colors()))
            endpoint = Endpoint(host, port, color.transport)
            port += 1
            self._bindings[automaton_name] = ProtocolBinding(
                automaton=automaton,
                parser=create_parser(spec),
                composer=create_composer(spec),
                local_endpoint=endpoint,
            )
        self._current: Tuple[str, str] = merged.initial_state
        self._instances: Dict[str, AbstractMessage] = {}
        self._taken_deltas: Set[int] = set()
        self._session: Optional[SessionRecord] = None
        #: Completed sessions, in order.
        self.sessions: List[SessionRecord] = []
        #: Parse failures observed (timestamp, automaton, error text).
        self.parse_failures: List[Tuple[float, str, str]] = []
        self._engine: Optional[NetworkEngine] = None

    # ------------------------------------------------------------------
    # NetworkNode interface
    # ------------------------------------------------------------------
    def unicast_endpoints(self) -> List[Endpoint]:
        return [binding.local_endpoint for binding in self._bindings.values()]

    def multicast_groups(self) -> List[Endpoint]:
        """The engine joins the multicast group of the client-facing colour.

        That is where legacy client requests arrive; responses from legacy
        services come back unicast to the engine's own endpoints.
        """
        initial_automaton, initial_state = self.merged.initial_state
        color = self.merged.state(initial_automaton, initial_state).color
        if color.is_multicast and color.group:
            return [Endpoint(color.group, color.port, color.transport)]
        return []

    def on_attached(self, engine: NetworkEngine) -> None:
        self._engine = engine

    # ------------------------------------------------------------------
    # public helpers
    # ------------------------------------------------------------------
    @property
    def current_state(self) -> Tuple[str, str]:
        """The ``(automaton, state)`` the engine is currently in."""
        return self._current

    def binding(self, automaton_name: str) -> ProtocolBinding:
        try:
            return self._bindings[automaton_name]
        except KeyError:
            raise EngineError(
                f"engine has no binding for automaton '{automaton_name}'"
            ) from None

    def local_endpoint(self, automaton_name: str) -> Endpoint:
        return self.binding(automaton_name).local_endpoint

    def force_destination(
        self, automaton_name: str, host: str, port: Optional[int] = None
    ) -> None:
        """Point the next send of ``automaton_name`` at ``host`` (set_host)."""
        binding = self.binding(automaton_name)
        color = next(iter(binding.automaton.colors()))
        binding.forced_destination = Endpoint(
            host, port if port is not None else color.port, color.transport
        )

    def translation_context(self) -> Dict[str, Any]:
        """Context passed to translation functions (bridge endpoints etc.)."""
        return {
            "bridge_endpoints": {
                name: (binding.local_endpoint.host, binding.local_endpoint.port)
                for name, binding in self._bindings.items()
            },
            "bridge_host": self.host,
        }

    def reset_session(self) -> None:
        """Forget all per-session state and return to the initial state."""
        self.merged.reset()
        self._instances.clear()
        self._taken_deltas.clear()
        for binding in self._bindings.values():
            binding.forced_destination = None
            binding.peer = None
        self._current = self.merged.initial_state
        self._session = None

    # ------------------------------------------------------------------
    # datagram handling
    # ------------------------------------------------------------------
    def on_datagram(
        self,
        engine: NetworkEngine,
        data: bytes,
        source: Endpoint,
        destination: Endpoint,
    ) -> None:
        self._engine = engine
        automaton_name = self._automaton_for_destination(destination)
        if automaton_name is None:
            return
        binding = self._bindings[automaton_name]
        current_automaton, current_state = self._current
        if current_automaton != automaton_name:
            # Message for a protocol we are not currently expecting input from;
            # legacy retransmissions and stray multicast traffic land here.
            return
        automaton = binding.automaton
        if not automaton.is_receive_state(current_state):
            return
        try:
            message = binding.parser.parse(data)
        except ParseError as exc:
            self.parse_failures.append((engine.now(), automaton_name, str(exc)))
            return
        transition = self._matching_receive(automaton, current_state, message.name)
        if transition is None:
            return

        if self._session is None:
            self._session = SessionRecord(started_at=engine.now())
        self._session.messages_received += 1
        self._session.received_names.append(message.name)

        binding.peer = source
        automaton.state(current_state).store(message)
        self._instances[message.name] = message
        self._current = (automaton_name, transition.target)
        self._advance(engine)

    def _automaton_for_destination(self, destination: Endpoint) -> Optional[str]:
        if destination.is_multicast:
            initial_automaton, initial_state = self.merged.initial_state
            color = self.merged.state(initial_automaton, initial_state).color
            if color.group == destination.host and color.port == destination.port:
                return initial_automaton
            return None
        for name, binding in self._bindings.items():
            endpoint = binding.local_endpoint
            if endpoint.host == destination.host and endpoint.port == destination.port:
                return name
        return None

    @staticmethod
    def _matching_receive(
        automaton: ColoredAutomaton, state_name: str, message_name: str
    ):
        for transition in automaton.transitions_from(state_name, Action.RECEIVE):
            if transition.message == message_name:
                return transition
        return None

    # ------------------------------------------------------------------
    # advancing through delta / send states
    # ------------------------------------------------------------------
    def _advance(self, engine: NetworkEngine) -> None:
        guard = 0
        while True:
            guard += 1
            if guard > 1000:
                raise EngineError(
                    f"automata engine did not reach a quiescent state (at {self._current})"
                )
            automaton_name, state_name = self._current
            automaton = self._bindings[automaton_name].automaton

            delta = self._next_delta(automaton_name, state_name)
            if delta is not None:
                self._taken_deltas.add(id(delta))
                self._execute_delta(delta)
                self._current = (delta.target_automaton, delta.target_state)
                continue

            send_transitions = automaton.transitions_from(state_name, Action.SEND)
            if send_transitions:
                transition = send_transitions[0]
                self._send(engine, automaton_name, state_name, transition.message)
                self._current = (automaton_name, transition.target)
                continue

            if automaton.transitions_from(state_name, Action.RECEIVE):
                # Wait for the next datagram.
                return

            # Terminal state: the interoperability session is complete.
            self._finish_session(engine)
            return

    def _next_delta(self, automaton_name: str, state_name: str) -> Optional[DeltaTransition]:
        for delta in self.merged.deltas_from(automaton_name, state_name):
            if id(delta) not in self._taken_deltas:
                return delta
        return None

    def _execute_delta(self, delta: DeltaTransition) -> None:
        for action in delta.actions:
            values = []
            for argument in action.arguments:
                instance = self._instances.get(argument.message)
                if instance is None:
                    raise EngineError(
                        f"lambda-action {action} references message "
                        f"'{argument.message}' which has not been received"
                    )
                values.append(instance.get(argument.field))
            self.actions.execute(action.name, self, delta, values)

    def _send(
        self,
        engine: NetworkEngine,
        automaton_name: str,
        state_name: str,
        message_name: str,
    ) -> None:
        binding = self._bindings[automaton_name]
        automaton = binding.automaton
        state = automaton.state(state_name)

        outgoing = AbstractMessage(message_name, protocol=automaton.protocol)
        self.merged.translation.apply(
            outgoing, self._instances, context=self.translation_context()
        )
        data = binding.composer.compose(outgoing)

        destination = self._destination_for(binding, state.color)
        engine.send(
            data,
            source=binding.local_endpoint,
            destination=destination,
            delay=self.processing_delay,
        )

        state.store(outgoing)
        self._instances[message_name] = outgoing
        if self._session is None:
            self._session = SessionRecord(started_at=engine.now())
        self._session.messages_sent += 1
        self._session.sent_names.append(message_name)
        self._session.finished_at = engine.now() + self.processing_delay

    def _destination_for(self, binding: ProtocolBinding, color) -> Endpoint:
        if binding.forced_destination is not None:
            return binding.forced_destination
        if binding.peer is not None:
            return binding.peer
        if color.is_multicast and color.group:
            return Endpoint(color.group, color.port, color.transport)
        raise EngineError(
            f"no destination known for sends of automaton '{binding.automaton.name}': "
            "the colour is unicast, no peer has been learnt and no set_host action ran"
        )

    def _finish_session(self, engine: NetworkEngine) -> None:
        if self._session is not None:
            if self._session.finished_at == 0.0:
                self._session.finished_at = engine.now()
            self.sessions.append(self._session)
        self.reset_session()

"""The Automata Engine: session-multiplexed runtime execution of merged automata.

Section IV-B of the paper: the Automata Engine interprets the loaded
behaviour model — the merged automaton plus its translation logic — and
drives the message parsers/composers and the network engine accordingly.
It reacts to three kinds of states:

* **receiving states** listen for a message on the state colour's network
  endpoint; a parsed message whose name matches an outgoing
  receive-transition is stored and the automaton advances;
* **sending states** construct the outgoing abstract message (filling its
  fields by executing the translation-logic assignments), compose it with
  the MDL composer of the protocol and hand it to the network engine with
  the network semantics of the state colour;
* **bridge (δ) states** neither send nor receive: they execute the λ-actions
  of the δ-transition (e.g. ``set_host``) and move execution to the next
  protocol's automaton.

The engine multiplexes **concurrent sessions**: every legacy client
interaction runs in its own :class:`~repro.core.engine.session.SessionContext`
holding the ``(automaton, state)`` cursor, the message instances received
and sent so far, the crossed δ-transitions, learnt peers and forced
destinations.  The merged automaton and its component coloured automata are
*read-only at runtime* — no session ever mutates the shared model — so a
datagram from a second client arriving while the first session is
mid-flight simply opens (or resumes) another session instead of being
dropped.

Demultiplexing is split into the :class:`~repro.core.engine.core.EngineCore`
steps so the sharded runtime can drive them separately:

1. :meth:`AutomataEngine.classify` — the destination endpoint selects the
   component automaton (any automaton whose colour matches a multicast
   group, or the owner of the unicast endpoint) and thereby the MDL parser;
2. datagrams arriving on the *client-facing* (initial) automaton are keyed
   by the pluggable :class:`~repro.core.engine.session.SessionCorrelator`
   — source endpoint by default, a transaction-identifier field (SLP XID,
   DNS ID) when the bridge supplies a
   :class:`~repro.core.engine.session.FieldCorrelator`; an unknown key
   whose message matches the merged initial state opens a new session;
3. datagrams arriving on any other automaton are responses from legacy
   services: they are matched by reply token when the correlator extracted
   one from the translated request, by the **per-session ephemeral source
   port** the request went out on (exact attribution for protocols such as
   SSDP and HTTP that carry no transaction identifier), and otherwise fall
   back to the oldest session waiting for that message on that automaton
   (preferring a session whose client shares the datagram's source host,
   which routes multi-leg client dialogs such as UPnP's follow-up HTTP GET).

Sessions that stop making progress are evicted after ``session_timeout``
seconds of inactivity by a **single periodic sweep** per engine (one
``call_later`` chain total, instead of one per session), so abandoned
lookups cannot accumulate state in a long-running bridge and high session
rates do not flood the event queue with eviction timers.

When ``serialize_processing`` is enabled the engine additionally models its
own compute as a serial resource: each translated send occupies the
engine's virtual CPU for ``processing_delay`` seconds and overlapping
sessions queue behind one another (a busy-until clock).  The standalone
engine keeps the historical default (translation cost as a fixed latency,
infinitely parallel); the sharded runtime turns serialisation on so that
adding workers buys genuine parallel capacity in the simulation, exactly
as adding processes would on real hardware.

The engine remains a reactive :class:`~repro.network.engine.NetworkNode`,
so the same code runs unchanged on the discrete-event simulation and on
the socket engine.  Each completed interaction is recorded as a
:class:`SessionRecord` attributed to its originating client, which is what
the performance evaluation measures (time from the first message received
by the framework to the last translated output sent).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ...network.addressing import Endpoint, Transport
from ...network.engine import NetworkEngine, NetworkNode
from ..automata.colored import Action, ColoredAutomaton
from ..automata.merge import DeltaTransition, MergedAutomaton
from ..errors import ConfigurationError, EngineError, ParseError
from ..mdl.base import MessageComposer, MessageParser, create_composer, create_parser
from ..mdl.compiled import (
    PROBE_MATCH,
    PROBE_REJECT,
    PROBE_UNKNOWN,
    SpecDiscriminator,
    discriminator_for,
)
from ..mdl.spec import MDLSpec
from ..message import AbstractMessage
from ...obs.tracing import (
    STAGE_COMPOSE,
    STAGE_DISPATCH,
    STAGE_INGRESS,
    STAGE_PARSE,
    STAGE_TRANSITION,
    STAGE_TRANSLATE,
    Tracer,
)
from .actions import ActionRegistry, default_action_registry
from .core import EngineCore
from .session import (
    EndpointCorrelator,
    FieldCorrelator,
    SessionContext,
    SessionCorrelator,
    SessionRecord,
)

__all__ = [
    "SessionRecord",
    "SessionContext",
    "SessionCorrelator",
    "EndpointCorrelator",
    "FieldCorrelator",
    "ProtocolBinding",
    "AutomataEngine",
    "binding_plan",
    "DEFAULT_SESSION_TIMEOUT",
]

#: Idle seconds after which an unfinished session is evicted.  Generous
#: enough for the paper's slowest leg (the ~6 s SLP service agent) plus
#: client retransmissions.
DEFAULT_SESSION_TIMEOUT = 30.0

#: Offset above ``base_port`` where per-session ephemeral ports start, well
#: clear of the per-automaton binding ports.
_EPHEMERAL_PORT_OFFSET = 1000


def binding_plan(
    merged: MergedAutomaton, host: str, base_port: int
) -> Dict[str, Endpoint]:
    """The per-automaton unicast endpoints an engine at ``host`` binds.

    Shared by the engine itself and by the shard router, which advertises
    the same endpoint layout under the bridge's public host.
    """
    plan: Dict[str, Endpoint] = {}
    port = base_port
    for automaton_name, automaton in merged.automata.items():
        color = automaton.single_color()
        plan[automaton_name] = Endpoint(host, port, color.transport)
        port += 1
    return plan


@dataclass
class ProtocolBinding:
    """Per-component-automaton runtime resources (shared by all sessions)."""

    automaton: ColoredAutomaton
    parser: MessageParser
    composer: MessageComposer
    local_endpoint: Endpoint
    #: Engine-level destination override (``set_host`` outside a session or
    #: static next-hop configuration); per-session overrides take precedence.
    forced_destination: Optional[Endpoint] = None


class AutomataEngine(NetworkNode, EngineCore):
    """Executes one merged automaton, multiplexing concurrent sessions."""

    def __init__(
        self,
        merged: MergedAutomaton,
        mdl_specs: Mapping[str, MDLSpec],
        host: str = "starlink.bridge",
        base_port: int = 41000,
        actions: Optional[ActionRegistry] = None,
        processing_delay: float = 0.0,
        name: str = "",
        correlator: Optional[SessionCorrelator] = None,
        session_timeout: Optional[float] = DEFAULT_SESSION_TIMEOUT,
        sweep_interval: Optional[float] = None,
        serialize_processing: bool = False,
        public_endpoints: Optional[Mapping[str, Endpoint]] = None,
        join_groups: bool = True,
        ephemeral_ports: bool = True,
        interpreted: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Create an engine for ``merged``.

        ``mdl_specs`` maps each component automaton's *name* to the MDL
        specification of its protocol (used to build the parser and
        composer).  ``processing_delay`` adds a fixed delay (seconds) to
        every outgoing send, modelling the framework's own translation cost
        on the virtual clock of a simulation; it defaults to zero, and with
        ``serialize_processing`` the cost additionally occupies the
        engine's serial compute (overlapping sessions queue).
        ``correlator`` decides which session an incoming datagram belongs
        to (source endpoint by default); ``session_timeout`` evicts
        sessions idle for that many seconds (``None``/``0`` disables) via a
        periodic sweep every ``sweep_interval`` seconds (default: half the
        timeout).  ``public_endpoints`` substitutes the advertised
        bridge endpoints in translation context and destination
        classification when the engine runs as a worker behind a
        :class:`~repro.runtime.router.ShardRouter`; ``join_groups`` is
        turned off for workers so only the router receives group traffic.
        ``ephemeral_ports`` sends upstream legs that carry no transaction
        identifier from a fresh per-session source port, so their replies
        are attributed exactly instead of FIFO (requires a network engine
        with ``bind_endpoint``; silently falls back otherwise).
        ``interpreted`` selects the original interpreting MDL codecs and
        trial-parse-only classification instead of the compiled hot path —
        the escape hatch for debugging and differential testing.
        ``tracer`` attaches a :mod:`repro.obs` tracer: the engine then
        records per-stage latency histograms (always) and sampled spans
        into its own recorder; without one, every span site is a single
        ``is None`` test.
        """
        self.merged = merged
        self.name = name or f"starlink:{merged.name}"
        self.host = host
        self.actions = actions if actions is not None else default_action_registry()
        self.processing_delay = processing_delay
        self.correlator = correlator if correlator is not None else EndpointCorrelator()
        self.session_timeout = session_timeout
        if sweep_interval is None and session_timeout:
            sweep_interval = session_timeout / 2.0
        self.sweep_interval = sweep_interval
        self.serialize_processing = serialize_processing
        self.join_groups = join_groups
        self.ephemeral_ports = ephemeral_ports
        self.interpreted = interpreted
        self.public_endpoints: Dict[str, Endpoint] = dict(public_endpoints or {})
        self._bindings: Dict[str, ProtocolBinding] = {}
        #: First-bytes discriminators per automaton (compiled mode only):
        #: a sound O(1) probe that lets :meth:`classify` skip candidates
        #: whose parser is guaranteed to reject the datagram.
        self._discriminators: Dict[str, SpecDiscriminator] = {}
        plan = binding_plan(merged, host, base_port)
        for automaton_name, automaton in merged.automata.items():
            spec = mdl_specs.get(automaton_name)
            if spec is None:
                raise ConfigurationError(
                    f"no MDL specification supplied for automaton '{automaton_name}'"
                )
            self._bindings[automaton_name] = ProtocolBinding(
                automaton=automaton,
                parser=create_parser(spec, interpreted=interpreted),
                composer=create_composer(spec, interpreted=interpreted),
                local_endpoint=plan[automaton_name],
            )
            if not interpreted:
                discriminator = discriminator_for(spec)
                if discriminator is not None:
                    self._discriminators[automaton_name] = discriminator
        #: Static multicast routing, precomputed once: the automata are
        #: read-only at runtime, so colours never change after this point.
        #: ``(group, port) -> automaton names`` plus the ordered group list
        #: (client-facing colour first).
        self._group_routes: Dict[Tuple[str, int], List[str]] = {}
        self._group_endpoints: List[Endpoint] = []
        initial_automaton, _ = merged.initial_state
        ordered = [initial_automaton] + [
            name for name in self._bindings if name != initial_automaton
        ]
        for automaton_name in ordered:
            for state in self._bindings[automaton_name].automaton.states.values():
                color = state.color
                if not (color.is_multicast and color.group):
                    continue
                key = (color.group, color.port)
                names = self._group_routes.setdefault(key, [])
                if not names:
                    self._group_endpoints.append(
                        Endpoint(color.group, color.port, color.transport)
                    )
                if automaton_name not in names:
                    names.append(automaton_name)
        #: In-flight sessions, keyed by correlation key, in creation order.
        self._sessions: Dict[Any, SessionContext] = {}
        #: Upstream reply tokens -> sessions awaiting a response, FIFO.
        self._pending_replies: Dict[Hashable, List[SessionContext]] = {}
        #: Ephemeral source endpoints -> (automaton, owning session).
        self._ephemeral_routes: Dict[
            Tuple[str, int, str], Tuple[str, SessionContext]
        ] = {}
        self._ephemeral_next_port = base_port + _EPHEMERAL_PORT_OFFSET
        #: Released ephemeral ports, FIFO with their release time.  A port
        #: is quarantined for a session-timeout's worth of virtual seconds
        #: before reuse (the sockets' TIME_WAIT discipline): a late reply
        #: for the dead session must not be delivered to a new session
        #: that inherited its port.  Reuse keeps a long-running engine
        #: inside its port range.
        self._ephemeral_free_ports: Deque[Tuple[float, int]] = deque()
        self._ephemeral_quarantine = session_timeout or DEFAULT_SESSION_TIMEOUT
        #: ``(host, port)`` of every address this engine sends from (the
        #: bindings plus live ephemeral ports); O(1) echo detection for
        #: the shard router's hot path.
        self._source_addresses = {
            (endpoint.host, endpoint.port) for endpoint in plan.values()
        }
        #: The session currently being advanced (targets λ-actions).
        self._active_session: Optional[SessionContext] = None
        #: True while a sweep event is pending on the network engine.
        self._sweep_scheduled = False
        #: Virtual time the serialised compute resource frees up.
        self._busy_until = 0.0
        #: Completed sessions, in order of completion.
        self.sessions: List[SessionRecord] = []
        #: Sessions abandoned by the idle-timeout sweeper.
        self.evicted_sessions: List[SessionRecord] = []
        #: Parse failures observed (timestamp, automaton, error text).
        self.parse_failures: List[Tuple[float, str, str]] = []
        #: Parsed datagrams no session could be found or opened for.
        self.unrouted_datagrams: int = 0
        #: Datagrams routed to a session that was not receptive to them
        #: (duplicates, retransmissions while mid-flight).
        self.ignored_datagrams: int = 0
        #: Upstream replies attributed exactly via an ephemeral source port.
        self.ephemeral_hits: int = 0
        #: Classifications resolved by a single discriminator probe (the
        #: probed candidate matched and parsed, no wasted trial parses).
        self.discriminator_hits: int = 0
        #: Classifications that needed trial parsing beyond the probe (no
        #: discriminator for the winning candidate, an ambiguous prefix, or
        #: a matched prefix whose full parse still failed).
        self.discriminator_misses: int = 0
        #: Datagrams rejected by discriminators alone — every candidate's
        #: probe said REJECT, so no parser ever ran (a garbage flood shows
        #: up here as cheap rejects instead of trial-parse storms).
        self.garbage_rejects: int = 0
        #: Called with the session key whenever a session leaves the table
        #: (normal completion, eviction or reset).  The shard router wires
        #: this to unpin its sticky entry promptly — drain latency then
        #: tracks session lifetime, not the prune interval.  May be invoked
        #: from a worker thread on the live runtime; listeners must be
        #: thread-safe.
        self.session_close_listener: Optional[Callable[[Hashable], None]] = None
        #: Optional :mod:`repro.obs` tracer shared with the deployment;
        #: the engine owns one span recorder named after itself.
        self.tracer = tracer
        self._recorder = tracer.recorder(self.name) if tracer is not None else None
        #: Trace id of the datagram currently being processed (0 when the
        #: delivery never crossed a stamping edge, e.g. a timer callback).
        self._active_trace = 0
        self._engine: Optional[NetworkEngine] = None

    # ------------------------------------------------------------------
    # NetworkNode interface
    # ------------------------------------------------------------------
    def unicast_endpoints(self) -> List[Endpoint]:
        return [binding.local_endpoint for binding in self._bindings.values()]

    def multicast_groups(self) -> List[Endpoint]:
        """Every multicast group named by a colour of the merged automaton.

        The client-facing (initial) colour's group comes first — that is
        where legacy client requests arrive — followed by the groups of the
        other component automata, so multicast traffic addressed to *any*
        protocol leg of the bridge is observable.  Workers behind a shard
        router (``join_groups=False``) join nothing: the router owns the
        groups and forwards.
        """
        if not self.join_groups:
            return []
        return list(self._group_endpoints)

    @property
    def group_endpoints(self) -> List[Endpoint]:
        """The colour groups of the merged automaton, independent of
        whether this engine joins them itself (the shard router asks)."""
        return list(self._group_endpoints)

    def on_attached(self, engine: NetworkEngine) -> None:
        self._engine = engine

    # ------------------------------------------------------------------
    # public helpers
    # ------------------------------------------------------------------
    @property
    def current_state(self) -> Tuple[str, str]:
        """The cursor of the oldest in-flight session (initial state if idle)."""
        for session in self._sessions.values():
            return session.current
        return self.merged.initial_state

    @property
    def active_sessions(self) -> List[SessionContext]:
        """The in-flight sessions, oldest first."""
        return list(self._sessions.values())

    def has_session(self, key: Any) -> bool:
        return key in self._sessions

    def busy_backlog(self, now: float) -> float:
        """Seconds of serialised translation compute committed beyond ``now``.

        How far this worker's busy-until clock is ahead of the clock — the
        queueing delay the *next* translated send would suffer.  Zero when
        processing is not serialised (the engine is then infinitely
        parallel by construction).  A control-plane load signal.
        """
        if not self.serialize_processing:
            return 0.0
        return max(0.0, self._busy_until - now)

    def stall_processing(self, now: float, seconds: float) -> None:
        """Fault injection: wedge this engine's serialised-compute clock.

        Pushes the busy-until clock ``seconds`` beyond wherever it stands
        (at least ``seconds`` beyond ``now``), so every subsequent
        translated send — and anything else scheduled through the busy
        clock, such as health-probe heartbeats — queues behind a stall, as
        if the worker's compute thread stopped making progress.  Delivered
        messages are still processed eventually (correctness is
        preserved); only their timing degrades, which is exactly the
        signature a failure detector must pick up.  Requires
        ``serialize_processing``: without a serial compute resource there
        is no clock to stall.
        """
        if not self.serialize_processing:
            raise ConfigurationError(
                f"engine '{self.name}' does not serialise processing; "
                "there is no busy clock to stall"
            )
        if seconds < 0:
            raise ConfigurationError(f"cannot stall for {seconds!r} seconds")
        self._busy_until = max(now, self._busy_until) + seconds

    def owns_endpoint(self, endpoint: Endpoint) -> bool:
        """Whether ``endpoint`` is one of this engine's source addresses.

        Covers the per-automaton bindings and the live per-session
        ephemeral ports; the shard router uses this to recognise (and
        drop) the bridge's own upstream multicast echoing back through
        the groups it joined.
        """
        return (endpoint.host, endpoint.port) in self._source_addresses

    def binding(self, automaton_name: str) -> ProtocolBinding:
        try:
            return self._bindings[automaton_name]
        except KeyError:
            raise EngineError(
                f"engine has no binding for automaton '{automaton_name}'"
            ) from None

    def local_endpoint(self, automaton_name: str) -> Endpoint:
        return self.binding(automaton_name).local_endpoint

    def force_destination(
        self, automaton_name: str, host: str, port: Optional[int] = None
    ) -> None:
        """Point the next send of ``automaton_name`` at ``host`` (set_host).

        When called while a session is being advanced (the normal case: a
        ``set_host`` λ-action on a δ-transition) the destination applies to
        that session only; otherwise it becomes the engine-level default.
        """
        binding = self.binding(automaton_name)
        color = binding.automaton.single_color()
        endpoint = Endpoint(
            host, port if port is not None else color.port, color.transport
        )
        if self._active_session is not None:
            self._active_session.forced_destinations[automaton_name] = endpoint
        else:
            binding.forced_destination = endpoint

    def advertised_endpoint(self, automaton_name: str) -> Endpoint:
        """The endpoint the bridge presents for an automaton: the public
        (router) endpoint when running sharded, the local binding else."""
        public = self.public_endpoints.get(automaton_name)
        if public is not None:
            return public
        return self.binding(automaton_name).local_endpoint

    def translation_context(
        self, session: Optional[SessionContext] = None
    ) -> Dict[str, Any]:
        """Context passed to translation functions (bridge endpoints etc.).

        Sharded workers advertise the *public* router endpoints here, so
        translated messages that embed a bridge address (e.g. the SSDP
        ``LOCATION`` header) are byte-identical regardless of which worker
        produced them — and follow-up client legs land on the router.
        """
        advertised_host = self.host
        if self.public_endpoints:
            advertised_host = next(iter(self.public_endpoints.values())).host
        context: Dict[str, Any] = {
            "bridge_endpoints": {
                name: (
                    self.advertised_endpoint(name).host,
                    self.advertised_endpoint(name).port,
                )
                for name in self._bindings
            },
            "bridge_host": advertised_host,
        }
        if session is not None:
            context["session"] = {
                "key": session.key,
                "client": (
                    (session.client.host, session.client.port)
                    if session.client is not None
                    else None
                ),
            }
        return context

    def open_session(
        self, key: Any = None, client: Optional[Endpoint] = None
    ) -> SessionContext:
        """Open a session explicitly (tests and custom drivers).

        Normal operation opens sessions implicitly when a datagram matching
        the merged initial state arrives from an unknown correlation key.
        """
        if self._engine is None:
            raise EngineError("engine is not attached to a network")
        return self._open_session(
            self._engine, key if key is not None else object(), client
        )

    def reset_session(self) -> None:
        """Abandon every in-flight session and clear engine-level overrides.

        The shared automata carry no runtime state, so this only drops the
        session contexts; completed :class:`SessionRecord` measurements are
        kept.
        """
        for session in list(self._sessions.values()):
            session.finished = True
            self._release_ephemeral(session)
        self._sessions.clear()
        self._pending_replies.clear()
        for binding in self._bindings.values():
            binding.forced_destination = None

    # ------------------------------------------------------------------
    # datagram handling (EngineCore pipeline)
    # ------------------------------------------------------------------
    def on_datagram(
        self,
        engine: NetworkEngine,
        data: bytes,
        source: Endpoint,
        destination: Endpoint,
    ) -> None:
        self._engine = engine
        tracer = self.tracer
        recorder = self._recorder
        if tracer is None or recorder is None:
            if self._deliver_to_ephemeral(engine, data, source, destination):
                return
            classified = self.classify(data, destination, now=engine.now())
            if classified is None:
                return
            automaton_name, message = classified
            self.dispatch(engine, automaton_name, message, source)
            return
        # This engine *is* the datagram's edge (standalone deployment, or
        # an upstream reply landing directly on a worker's sockets, which
        # bypasses the router): stamp the trace id and record the ingress
        # root span here.
        trace = tracer.stamp()
        started = perf_counter()
        previous = self._active_trace
        self._active_trace = trace
        try:
            if self._deliver_to_ephemeral(engine, data, source, destination):
                return
            classified = self.classify(
                data, destination, now=engine.now(), trace=trace
            )
            if classified is None:
                return
            automaton_name, message = classified
            self.dispatch(engine, automaton_name, message, source, trace=trace)
        finally:
            self._active_trace = previous
            recorder.record(trace, STAGE_INGRESS, started)

    def classify(
        self,
        data: bytes,
        destination: Endpoint,
        now: float = 0.0,
        counters: Optional[Any] = None,
        trace: int = 0,
        recorder=None,
    ) -> Optional[Tuple[str, AbstractMessage]]:
        """Select the component automaton for ``destination`` and parse.

        Candidate automata are tried in order (client-facing first for
        multicast groups shared by several colours); the first parser that
        accepts the bytes wins.  Returns ``None`` when no automaton owns
        the destination, or when every candidate parser rejected the bytes
        (recorded in ``parse_failures``).

        ``counters`` redirects the outcome counters — ``parse_failures``,
        ``discriminator_hits``/``discriminator_misses``/
        ``garbage_rejects`` — to another owner: the shard router passes
        itself when classifying at the edge, so its outcomes are charged
        to the router and the router/worker counters stay a conserved
        sum.  ``trace``/``recorder`` likewise attribute the parse span to
        the caller's recorder (default: this engine's own).
        """
        target = counters if counters is not None else self
        rec = recorder if recorder is not None else self._recorder
        candidates = self._automata_for_destination(destination)
        if not candidates:
            return None
        started = perf_counter() if rec is not None else 0.0
        automaton_name = candidates[0]
        last_error: Optional[str] = None
        if self.interpreted:
            for name in candidates:
                try:
                    message = self._bindings[name].parser.parse(data)
                    if rec is not None:
                        rec.record(trace, STAGE_PARSE, started)
                    return name, message
                except ParseError as exc:
                    automaton_name, last_error = name, str(exc)
            if rec is not None:
                rec.record(trace, STAGE_PARSE, started)
            target.parse_failures.append((now, automaton_name, last_error or ""))
            return None
        # Compiled mode: probe each candidate's first-bytes discriminator
        # first.  REJECT is sound (the parser would raise), so rejected
        # candidates are skipped without parsing; only ambiguous (UNKNOWN)
        # or matching prefixes fall through to a real parse.
        discriminators = self._discriminators
        attempted = False
        clean = True
        for name in candidates:
            discriminator = discriminators.get(name)
            verdict = (
                discriminator.probe(data)
                if discriminator is not None
                else PROBE_UNKNOWN
            )
            if verdict == PROBE_REJECT:
                continue
            attempted = True
            try:
                message = self._bindings[name].parser.parse(data)
            except ParseError as exc:
                automaton_name, last_error = name, str(exc)
                clean = False
                continue
            if verdict == PROBE_MATCH and clean:
                target.discriminator_hits += 1
            else:
                target.discriminator_misses += 1
            if rec is not None:
                rec.record(trace, STAGE_PARSE, started)
            return name, message
        if not attempted:
            # Pure discriminator reject: no parser ever ran, so no parse
            # span/histogram either — the edge's classify span (or the
            # caller) owns the probe cost.
            target.garbage_rejects += 1
            target.parse_failures.append(
                (now, automaton_name, "datagram rejected by first-bytes discriminator")
            )
            return None
        if rec is not None:
            rec.record(trace, STAGE_PARSE, started)
        # Trial parses ran (an ambiguous or matched prefix) and all of
        # them failed: that is still a discriminator miss, so the three
        # outcome counters partition every classified datagram.
        target.discriminator_misses += 1
        target.parse_failures.append((now, automaton_name, last_error or ""))
        return None

    def routing_key(
        self, automaton_name: str, message: AbstractMessage, source: Endpoint
    ) -> Optional[Hashable]:
        """The sticky session key for client-facing traffic, else ``None``."""
        initial_automaton, _ = self.merged.initial_state
        if automaton_name != initial_automaton:
            return None
        return self.correlator.client_key(source, message)

    def dispatch(
        self,
        engine: NetworkEngine,
        automaton_name: str,
        message: AbstractMessage,
        source: Endpoint,
        count_unrouted: bool = True,
        strict: bool = False,
        trace: int = 0,
    ) -> bool:
        """Route an already-parsed message to its session and advance it."""
        self._engine = engine
        recorder = self._recorder
        if recorder is None:
            session = self._route(
                engine, automaton_name, message, source, strict=strict
            )
            if session is None:
                if count_unrouted:
                    self.unrouted_datagrams += 1
                return False
            self._deliver(engine, session, automaton_name, message, source)
            return True
        previous = self._active_trace
        self._active_trace = trace
        started = perf_counter()
        try:
            session = self._route(
                engine, automaton_name, message, source, strict=strict
            )
            if session is None:
                if count_unrouted:
                    self.unrouted_datagrams += 1
                return False
            self._deliver(engine, session, automaton_name, message, source)
            return True
        finally:
            self._active_trace = previous
            recorder.record(trace, STAGE_DISPATCH, started)

    def _automata_for_destination(self, destination: Endpoint) -> List[str]:
        """Component automata addressed by ``destination``, client-facing first.

        A multicast destination selects *every* automaton one of whose
        colours names that group — not only the merged automaton's initial
        one — so upstream multicast legs receive their traffic too.  A
        unicast destination selects the owner of the endpoint; the public
        (router-advertised) endpoints count as owned too, so a worker can
        classify traffic the router received on the bridge's behalf.
        """
        if destination.is_multicast:
            return list(self._group_routes.get((destination.host, destination.port), []))
        for name, binding in self._bindings.items():
            for endpoint in (binding.local_endpoint, self.public_endpoints.get(name)):
                if (
                    endpoint is not None
                    and endpoint.host == destination.host
                    and endpoint.port == destination.port
                ):
                    return [name]
        return []

    # ------------------------------------------------------------------
    # session demultiplexing
    # ------------------------------------------------------------------
    def _route(
        self,
        engine: NetworkEngine,
        automaton_name: str,
        message: AbstractMessage,
        source: Endpoint,
        strict: bool = False,
    ) -> Optional[SessionContext]:
        """Find (or open) the session an incoming message belongs to."""
        initial_automaton, initial_state = self.merged.initial_state
        if automaton_name == initial_automaton:
            key = self.correlator.client_key(source, message)
            session = self._sessions.get(key)
            if session is not None:
                return session
            opening = self._matching_receive(
                self._bindings[initial_automaton].automaton, initial_state, message.name
            )
            if opening is not None:
                return self._open_session(engine, key, source)
            return None

        # A response from a legacy service (or a later client leg, e.g. the
        # HTTP GET of a UPnP control point) on a non-initial automaton.
        token = self.correlator.reply_token(message)
        if token is not None:
            for session in self._pending_replies.get(token, []):
                if not session.finished:
                    return session
        waiting = [
            session
            for session in self._sessions.values()
            if self._expects(session, automaton_name, message.name)
        ]
        if not waiting:
            return None
        for session in waiting:
            if session.client is not None and session.client.host == source.host:
                return session
        if strict:
            # No exact evidence ties this datagram to one of our sessions;
            # a fanning-out router will fall back FIFO only after every
            # shard declined the strict pass.
            return None
        return waiting[0]

    def _expects(
        self, session: SessionContext, automaton_name: str, message_name: str
    ) -> bool:
        current_automaton, current_state = session.current
        if current_automaton != automaton_name:
            return False
        automaton = self._bindings[automaton_name].automaton
        return (
            self._matching_receive(automaton, current_state, message_name) is not None
        )

    def _open_session(
        self, engine: NetworkEngine, key: Any, client: Optional[Endpoint]
    ) -> SessionContext:
        now = engine.now()
        session = SessionContext(
            key=key,
            current=self.merged.initial_state,
            record=SessionRecord(started_at=now, client=client, session_key=key),
            client=client,
            last_activity=now,
        )
        self._sessions[key] = session
        self._ensure_sweeper(engine)
        return session

    def _deliver(
        self,
        engine: NetworkEngine,
        session: SessionContext,
        automaton_name: str,
        message: AbstractMessage,
        source: Endpoint,
    ) -> None:
        current_automaton, current_state = session.current
        automaton = self._bindings[automaton_name].automaton
        if current_automaton != automaton_name:
            self.ignored_datagrams += 1
            return
        transition = self._matching_receive(automaton, current_state, message.name)
        if transition is None:
            self.ignored_datagrams += 1
            return

        session.record.messages_received += 1
        session.record.received_names.append(message.name)
        if self._active_trace:
            session.trace_id = self._active_trace
        session.peers[automaton_name] = source
        session.store(automaton_name, current_state, message)
        session.instances[message.name] = message
        session.current = (automaton_name, transition.target)
        session.touch(engine.now())
        self._advance(engine, session)

    # ------------------------------------------------------------------
    # ephemeral per-session source ports (exact upstream attribution)
    # ------------------------------------------------------------------
    def _deliver_to_ephemeral(
        self,
        engine: NetworkEngine,
        data: bytes,
        source: Endpoint,
        destination: Endpoint,
    ) -> bool:
        """Deliver a reply addressed to a per-session ephemeral port.

        The port *is* the session attribution: no correlator, no FIFO
        fallback.  Returns True when the destination was an ephemeral
        endpoint of this engine (whether or not delivery succeeded).
        """
        entry = self._ephemeral_routes.get(
            (destination.host, destination.port, destination.transport)
        )
        if entry is None:
            return False
        automaton_name, session = entry
        recorder = self._recorder
        started = perf_counter() if recorder is not None else 0.0
        try:
            message = self._bindings[automaton_name].parser.parse(data)
        except ParseError as exc:
            if recorder is not None:
                recorder.record(self._active_trace, STAGE_PARSE, started)
            self.parse_failures.append((engine.now(), automaton_name, str(exc)))
            return True
        if recorder is not None:
            recorder.record(self._active_trace, STAGE_PARSE, started)
        if session.finished:
            self.ignored_datagrams += 1
            return True
        self.ephemeral_hits += 1
        self._deliver(engine, session, automaton_name, message, source)
        return True

    def _ephemeral_source(
        self, session: SessionContext, automaton_name: str, binding: ProtocolBinding
    ) -> Optional[Endpoint]:
        """A per-session source endpoint for a token-less upstream send.

        Allocated once per (session, automaton) and registered with the
        network engine when it supports late binding; ``None`` when the
        feature is off or the engine cannot bind new endpoints (the shared
        binding endpoint and FIFO matching remain the fallback).
        """
        if not self.ephemeral_ports or self._engine is None:
            return None
        bind = getattr(self._engine, "bind_endpoint", None)
        if bind is None:
            return None
        existing = session.ephemeral_sources.get(automaton_name)
        if existing is not None:
            return existing
        transport = binding.local_endpoint.transport
        if getattr(self._engine, "kernel_ephemeral_ports", False):
            # Live sockets: the kernel assigns the port (bind to 0) and
            # manages reuse, so the engine's deterministic range and
            # TIME_WAIT quarantine below do not apply.  TCP legs skip the
            # feature entirely — their replies return on the accepted
            # connection, which is exact attribution already.
            if transport != Transport.UDP:
                return None
            endpoint = bind(self, Endpoint(self.host, 0, transport))
            if endpoint is None:
                return None
        else:
            now = self._engine.now()
            if (
                self._ephemeral_free_ports
                and now - self._ephemeral_free_ports[0][0]
                >= self._ephemeral_quarantine
            ):
                _, port = self._ephemeral_free_ports.popleft()
            else:
                port = self._ephemeral_next_port
                self._ephemeral_next_port += 1
            endpoint = Endpoint(self.host, port, transport)
            bind(self, endpoint)
        session.ephemeral_sources[automaton_name] = endpoint
        self._ephemeral_routes[
            (endpoint.host, endpoint.port, endpoint.transport)
        ] = (automaton_name, session)
        self._source_addresses.add((endpoint.host, endpoint.port))
        return endpoint

    def _release_ephemeral(self, session: SessionContext) -> None:
        if not session.ephemeral_sources:
            return
        unbind = getattr(self._engine, "unbind_endpoint", None)
        kernel = getattr(self._engine, "kernel_ephemeral_ports", False)
        now = self._engine.now() if self._engine is not None else 0.0
        for endpoint in session.ephemeral_sources.values():
            self._ephemeral_routes.pop(
                (endpoint.host, endpoint.port, endpoint.transport), None
            )
            self._source_addresses.discard((endpoint.host, endpoint.port))
            if not kernel:
                # Kernel-assigned ports are not drawn from the engine's
                # range; closing the socket returns them to the OS.
                self._ephemeral_free_ports.append((now, endpoint.port))
            if unbind is not None:
                unbind(self, endpoint)
        session.ephemeral_sources.clear()

    @staticmethod
    def _matching_receive(
        automaton: ColoredAutomaton, state_name: str, message_name: str
    ):
        for transition in automaton.transitions_from(state_name, Action.RECEIVE):
            if transition.message == message_name:
                return transition
        return None

    # ------------------------------------------------------------------
    # advancing through delta / send states
    # ------------------------------------------------------------------
    def _advance(self, engine: NetworkEngine, session: SessionContext) -> None:
        previous = self._active_session
        self._active_session = session
        recorder = self._recorder
        started = perf_counter() if recorder is not None else 0.0
        try:
            self._advance_locked(engine, session)
        finally:
            self._active_session = previous
            if recorder is not None:
                recorder.record(self._active_trace, STAGE_TRANSITION, started)

    def _advance_locked(self, engine: NetworkEngine, session: SessionContext) -> None:
        guard = 0
        while True:
            guard += 1
            if guard > 1000:
                raise EngineError(
                    f"automata engine did not reach a quiescent state (at {session.current})"
                )
            automaton_name, state_name = session.current
            automaton = self._bindings[automaton_name].automaton

            delta = self._next_delta(session, automaton_name, state_name)
            if delta is not None:
                session.taken_deltas.add(id(delta))
                self._execute_delta(session, delta)
                session.current = (delta.target_automaton, delta.target_state)
                continue

            send_transitions = automaton.transitions_from(state_name, Action.SEND)
            if send_transitions:
                transition = send_transitions[0]
                self._send(engine, session, automaton_name, state_name, transition.message)
                session.current = (automaton_name, transition.target)
                continue

            if automaton.transitions_from(state_name, Action.RECEIVE):
                # Wait for the next datagram of this session.
                return

            # Terminal state: the interoperability session is complete.
            self._finish_session(engine, session)
            return

    def _next_delta(
        self, session: SessionContext, automaton_name: str, state_name: str
    ) -> Optional[DeltaTransition]:
        for delta in self.merged.deltas_from(automaton_name, state_name):
            if id(delta) not in session.taken_deltas:
                return delta
        return None

    def _execute_delta(self, session: SessionContext, delta: DeltaTransition) -> None:
        for action in delta.actions:
            values = []
            for argument in action.arguments:
                instance = session.instances.get(argument.message)
                if instance is None:
                    raise EngineError(
                        f"lambda-action {action} references message "
                        f"'{argument.message}' which has not been received"
                    )
                values.append(instance.get(argument.field))
            self.actions.execute(action.name, self, delta, values)

    def _charge_processing(self, now: float) -> float:
        """Seconds until the translated output leaves the engine.

        Plain mode: the fixed ``processing_delay``.  Serialised mode: the
        engine's compute is a serial resource — the send waits for the
        busy-until clock, then occupies it for ``processing_delay``, so
        overlapping sessions queue behind each other and a sharded runtime
        gains real capacity from additional workers.
        """
        if not self.serialize_processing:
            return self.processing_delay
        start = max(now, self._busy_until)
        self._busy_until = start + self.processing_delay
        return self._busy_until - now

    def _send(
        self,
        engine: NetworkEngine,
        session: SessionContext,
        automaton_name: str,
        state_name: str,
        message_name: str,
    ) -> None:
        binding = self._bindings[automaton_name]
        automaton = binding.automaton
        state = automaton.state(state_name)

        outgoing = AbstractMessage(message_name, protocol=automaton.protocol)
        recorder = self._recorder
        if recorder is None:
            self.merged.translation.apply(
                outgoing, session.instances, context=self.translation_context(session)
            )
            data = binding.composer.compose(outgoing)
        else:
            started = perf_counter()
            self.merged.translation.apply(
                outgoing, session.instances, context=self.translation_context(session)
            )
            started = recorder.record(self._active_trace, STAGE_TRANSLATE, started)
            data = binding.composer.compose(outgoing)
            recorder.record(self._active_trace, STAGE_COMPOSE, started)

        destination = self._destination_for(session, automaton_name, binding, state.color)
        source = binding.local_endpoint
        token: Optional[Hashable] = None
        initial_automaton, _ = self.merged.initial_state
        if automaton_name != initial_automaton:
            token = self.correlator.reply_token(outgoing)
            if token is None:
                # No transaction identifier to correlate the reply by: give
                # the request its own return address instead.
                source = self._ephemeral_source(session, automaton_name, binding) or source
        delay = self._charge_processing(engine.now())
        engine.send(
            data,
            source=source,
            destination=destination,
            delay=delay,
        )

        session.store(automaton_name, state_name, outgoing)
        session.instances[message_name] = outgoing
        if token is not None:
            self._pending_replies.setdefault(token, []).append(session)
            session.reply_tokens.append(token)
        session.record.messages_sent += 1
        session.record.sent_names.append(message_name)
        session.record.finished_at = engine.now() + delay
        session.touch(engine.now())

    def _destination_for(
        self,
        session: SessionContext,
        automaton_name: str,
        binding: ProtocolBinding,
        color,
    ) -> Endpoint:
        forced = session.forced_destinations.get(automaton_name) or binding.forced_destination
        if forced is not None:
            return forced
        peer = session.peers.get(automaton_name)
        if peer is not None:
            return peer
        if color.is_multicast and color.group:
            return Endpoint(color.group, color.port, color.transport)
        raise EngineError(
            f"no destination known for sends of automaton '{binding.automaton.name}': "
            "the colour is unicast, no peer has been learnt and no set_host action ran"
        )

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def _finish_session(self, engine: NetworkEngine, session: SessionContext) -> None:
        if session.record.finished_at == 0.0:
            session.record.finished_at = engine.now()
        self.sessions.append(session.record)
        self._close_session(session)

    def _close_session(self, session: SessionContext) -> None:
        session.finished = True
        registered = self._sessions.get(session.key)
        if registered is session:
            del self._sessions[session.key]
            if self.session_close_listener is not None:
                self.session_close_listener(session.key)
        for token in session.reply_tokens:
            waiting = self._pending_replies.get(token)
            if waiting and session in waiting:
                waiting.remove(session)
                if not waiting:
                    del self._pending_replies[token]
        session.reply_tokens.clear()
        self._release_ephemeral(session)

    # -- idle-session eviction: one periodic sweep per engine -------------
    def _ensure_sweeper(self, engine: NetworkEngine) -> None:
        """Schedule the next eviction sweep, if one is not pending already.

        One ``call_later`` chain serves the whole engine regardless of how
        many sessions are in flight (the per-session timers this replaces
        scheduled one event per session).  The chain stops when the session
        table drains, so simulations still quiesce.
        """
        if not self.session_timeout or self.session_timeout <= 0:
            return
        if self._sweep_scheduled:
            return
        self._sweep_scheduled = True
        interval = self.sweep_interval or self.session_timeout
        engine.call_later(interval, lambda: self._sweep(engine))

    def _sweep(self, engine: NetworkEngine) -> None:
        self._sweep_scheduled = False
        assert self.session_timeout is not None
        now = engine.now()
        for session in list(self._sessions.values()):
            if now - session.last_activity + 1e-9 >= self.session_timeout:
                self._evict(engine, session)
        if self._sessions:
            self._ensure_sweeper(engine)

    def _evict(self, engine: NetworkEngine, session: SessionContext) -> None:
        record = session.record
        record.evicted = True
        if record.finished_at == 0.0:
            record.finished_at = engine.now()
        self.evicted_sessions.append(record)
        self._close_session(session)

"""Runtime engines: λ-actions, the automata engine and the bridge API."""

from .actions import ActionRegistry, default_action_registry
from .automata_engine import AutomataEngine, ProtocolBinding, SessionRecord
from .bridge import StarlinkBridge

__all__ = [
    "ActionRegistry",
    "default_action_registry",
    "AutomataEngine",
    "ProtocolBinding",
    "SessionRecord",
    "StarlinkBridge",
]

"""Runtime engines: λ-actions, sessions, the automata engine and the bridge API."""

from .actions import ActionRegistry, default_action_registry
from .automata_engine import (
    AutomataEngine,
    DEFAULT_SESSION_TIMEOUT,
    ProtocolBinding,
    binding_plan,
)
from .bridge import StarlinkBridge
from .core import EngineCore
from .session import (
    EndpointCorrelator,
    FieldCorrelator,
    SessionContext,
    SessionCorrelator,
    SessionRecord,
)

__all__ = [
    "ActionRegistry",
    "default_action_registry",
    "AutomataEngine",
    "DEFAULT_SESSION_TIMEOUT",
    "ProtocolBinding",
    "binding_plan",
    "EngineCore",
    "SessionRecord",
    "SessionContext",
    "SessionCorrelator",
    "EndpointCorrelator",
    "FieldCorrelator",
    "StarlinkBridge",
]

"""Translation functions ``T`` used by assignments (equation 6).

When the content of a source field is not directly assignable to the target
field — different types, different encodings, different conventions — the
assignment routes the value through a *translation function*.  Functions
are registered by name in a :class:`TranslationFunctionRegistry`, so new
translations can be plugged in at runtime without changing the engine.

The built-in functions cover what the paper's discovery case studies need:

``identity``            return the value unchanged (the default behaviour);
``to_int`` / ``to_str`` numeric/textual casts;
``url_base``            extract the base URL from an HTTP device description body;
``url_host``/``url_port``/``url_path``  pick apart a URL;
``service_type_to_dns`` map an SLP/SSDP service type to an mDNS service name
                        (``service:test`` -> ``_test._tcp.local``);
``dns_to_service_type`` the reverse mapping;
``prefix`` / ``suffix`` prepend/append a literal argument;
``bridge_http_location`` build an HTTP URL pointing at the bridge itself
                        (used when the bridge must serve a UPnP device
                        description on behalf of a non-UPnP service);
``constant``            ignore the source value and return the literal argument
                        (used to fill protocol boilerplate such as
                        ``MAN: "ssdp:discover"``);
``slp_service_type`` / ``upnp_service_type``
                        normalise a service identifier from any of the three
                        discovery vocabularies into the SLP (``service:test``)
                        or UPnP (``urn:schemas-upnp-org:service:test:1``) form;
``device_description``  wrap a service URL into a minimal UPnP device
                        description document (the body the bridge serves when
                        it answers an HTTP GET on behalf of a non-UPnP service).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Optional, Sequence
from urllib.parse import urlparse

from ..errors import TranslationError
from ..message import AbstractMessage

__all__ = ["TranslationFunctionRegistry", "default_translation_registry"]


TranslationFunction = Callable[..., Any]


class TranslationFunctionRegistry:
    """Runtime-extensible registry of named translation functions."""

    def __init__(self) -> None:
        self._functions: Dict[str, TranslationFunction] = {}

    def register(self, name: str, function: TranslationFunction) -> None:
        self._functions[name] = function

    def has(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def apply(
        self,
        name: str,
        value: Any,
        arguments: Sequence[str] = (),
        context: Optional[Dict[str, Any]] = None,
        source: Optional[AbstractMessage] = None,
        target: Optional[AbstractMessage] = None,
    ) -> Any:
        """Apply the function ``name`` to ``value``.

        Functions receive the value plus keyword-only extras (literal
        ``arguments`` from the assignment, the engine ``context``, and the
        source/target message instances); simple functions may ignore them.
        """
        try:
            function = self._functions[name]
        except KeyError:
            raise TranslationError(f"unknown translation function '{name}'") from None
        try:
            return function(
                value,
                arguments=tuple(arguments),
                context=dict(context or {}),
                source=source,
                target=target,
            )
        except TranslationError:
            raise
        except Exception as exc:
            raise TranslationError(
                f"translation function '{name}' failed on {value!r}: {exc}"
            ) from exc

    def register_defaults(self) -> "TranslationFunctionRegistry":
        self.register("identity", _identity)
        self.register("to_int", _to_int)
        self.register("to_str", _to_str)
        self.register("url_base", _url_base)
        self.register("url_host", _url_host)
        self.register("url_port", _url_port)
        self.register("url_path", _url_path)
        self.register("service_type_to_dns", _service_type_to_dns)
        self.register("dns_to_service_type", _dns_to_service_type)
        self.register("prefix", _prefix)
        self.register("suffix", _suffix)
        self.register("bridge_http_location", _bridge_http_location)
        self.register("constant", _constant)
        self.register("slp_service_type", _slp_service_type)
        self.register("upnp_service_type", _upnp_service_type)
        self.register("device_description", _device_description)
        return self


def default_translation_registry() -> TranslationFunctionRegistry:
    """Return a fresh registry containing the built-in translation functions."""
    return TranslationFunctionRegistry().register_defaults()


# ----------------------------------------------------------------------
# built-in functions
# ----------------------------------------------------------------------
def _identity(value: Any, **_: Any) -> Any:
    return value


def _to_int(value: Any, **_: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    text = str(value).strip()
    match = re.search(r"-?\d+", text)
    if match is None:
        raise TranslationError(f"cannot convert {value!r} to an integer")
    return int(match.group(0))


def _to_str(value: Any, **_: Any) -> str:
    return "" if value is None else str(value)


_URL_IN_TEXT = re.compile(r"https?://[^\s<>\"']+")


def _url_base(value: Any, **_: Any) -> str:
    """Extract the first URL found in a text blob (e.g. ``URLBase`` of a
    UPnP device description served over HTTP)."""
    text = "" if value is None else str(value)
    match = _URL_IN_TEXT.search(text)
    if match is None:
        raise TranslationError(f"no URL found in {text!r}")
    return match.group(0)


def _parse_url(value: Any) -> "urlparse":
    text = "" if value is None else str(value)
    if "://" not in text:
        text = "http://" + text
    return urlparse(text)


def _url_host(value: Any, **_: Any) -> str:
    host = _parse_url(value).hostname
    if not host:
        raise TranslationError(f"no host in URL {value!r}")
    return host


def _url_port(value: Any, **_: Any) -> int:
    parsed = _parse_url(value)
    if parsed.port is not None:
        return parsed.port
    return 443 if parsed.scheme == "https" else 80


def _url_path(value: Any, **_: Any) -> str:
    return _parse_url(value).path or "/"


def _service_type_to_dns(value: Any, **kwargs: Any) -> str:
    """Map an SLP/SSDP service type to an mDNS/DNS-SD service name.

    ``service:test`` or ``urn:schemas-upnp-org:service:test:1`` become
    ``_test._tcp.local``; an optional literal argument overrides the
    transport label (default ``_tcp``).
    """
    arguments = kwargs.get("arguments", ())
    transport = arguments[0] if arguments else "_tcp"
    text = "" if value is None else str(value)
    parts = [part for part in re.split(r"[:]", text) if part]
    # Pick the most specific human-meaningful component.
    candidates = [part for part in parts if part not in {"service", "urn", "schemas-upnp-org"}]
    name = candidates[-2] if len(candidates) > 1 and candidates[-1].isdigit() else (
        candidates[-1] if candidates else text
    )
    name = name.strip("._") or "service"
    return f"_{name}.{transport}.local"


def _dns_to_service_type(value: Any, **kwargs: Any) -> str:
    """Map an mDNS service name back to an SLP-style service type."""
    arguments = kwargs.get("arguments", ())
    prefix = arguments[0] if arguments else "service:"
    text = "" if value is None else str(value)
    first_label = text.split(".")[0].lstrip("_")
    return f"{prefix}{first_label}"


def _prefix(value: Any, **kwargs: Any) -> str:
    arguments = kwargs.get("arguments", ())
    literal = arguments[0] if arguments else ""
    return f"{literal}{'' if value is None else value}"


def _suffix(value: Any, **kwargs: Any) -> str:
    arguments = kwargs.get("arguments", ())
    literal = arguments[0] if arguments else ""
    return f"{'' if value is None else value}{literal}"


def _constant(value: Any, **kwargs: Any) -> str:
    """Return the literal argument, ignoring the source value."""
    arguments = kwargs.get("arguments", ())
    if not arguments:
        raise TranslationError("constant() needs a literal argument")
    return arguments[0]


def _core_service_name(value: Any) -> str:
    """Extract the service keyword shared by the three discovery vocabularies.

    ``service:test`` (SLP), ``urn:schemas-upnp-org:service:test:1`` (UPnP) and
    ``_test._tcp.local`` (DNS-SD) all reduce to ``test``.
    """
    text = ("" if value is None else str(value)).strip()
    if not text:
        return "service"
    if text.startswith("_") or ".local" in text or "._" in text:
        return text.split(".")[0].lstrip("_") or "service"
    parts = [part for part in text.split(":") if part]
    candidates = [
        part for part in parts if part not in {"service", "urn", "schemas-upnp-org"}
    ]
    if not candidates:
        return "service"
    if candidates[-1].isdigit() and len(candidates) > 1:
        return candidates[-2]
    return candidates[-1]


def _slp_service_type(value: Any, **kwargs: Any) -> str:
    """Normalise any discovery service identifier into SLP form."""
    arguments = kwargs.get("arguments", ())
    prefix = arguments[0] if arguments else "service:"
    return f"{prefix}{_core_service_name(value)}"


def _upnp_service_type(value: Any, **kwargs: Any) -> str:
    """Normalise any discovery service identifier into UPnP URN form."""
    arguments = kwargs.get("arguments", ())
    version = arguments[0] if arguments else "1"
    return f"urn:schemas-upnp-org:service:{_core_service_name(value)}:{version}"


def _device_description(value: Any, **kwargs: Any) -> str:
    """Wrap a service URL into a minimal UPnP device description body."""
    url = "" if value is None else str(value)
    return (
        "<?xml version=\"1.0\"?>\n"
        "<root xmlns=\"urn:schemas-upnp-org:device-1-0\">\n"
        f"  <URLBase>{url}</URLBase>\n"
        "  <device>\n"
        "    <friendlyName>Starlink bridged service</friendlyName>\n"
        "    <deviceType>urn:schemas-upnp-org:device:Bridged:1</deviceType>\n"
        "  </device>\n"
        "</root>\n"
    )


def _bridge_http_location(value: Any, **kwargs: Any) -> str:
    """Build an HTTP URL pointing at the bridge's own HTTP endpoint.

    The engine publishes its listen endpoints in the translation context
    under ``"bridge_endpoints"`` (a mapping from automaton/protocol name to
    ``(host, port)``).  The assignment's literal argument names which
    endpoint to use; the path defaults to ``/description.xml``.
    """
    context = kwargs.get("context", {})
    arguments = kwargs.get("arguments", ())
    endpoints = context.get("bridge_endpoints", {})
    key = arguments[0] if arguments else "HTTP"
    path = arguments[1] if len(arguments) > 1 else "/description.xml"
    endpoint = endpoints.get(key)
    if endpoint is None:
        raise TranslationError(
            f"bridge endpoint '{key}' not available in translation context"
        )
    host, port = endpoint
    return f"http://{host}:{port}{path}"

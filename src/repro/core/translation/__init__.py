"""Translation logic: assignments, translation functions and XML bridge documents."""

from .functions import TranslationFunctionRegistry, default_translation_registry
from .logic import Assignment, MessageFieldRef, TranslationLogic
from .xml_loader import dump_bridge, dumps_bridge, load_bridge, loads_bridge

__all__ = [
    "TranslationLogic",
    "Assignment",
    "MessageFieldRef",
    "TranslationFunctionRegistry",
    "default_translation_registry",
    "load_bridge",
    "loads_bridge",
    "dump_bridge",
    "dumps_bridge",
]

"""XML form of bridge specifications (merged automata + translation logic).

Fig. 8 of the paper shows translation logic expressed in XML; Fig. 5 shows
the complete merge specification with its three parts (message
equivalences, field assignments, δ-transitions).  This module defines the
``<Bridge>`` document that carries all three, so a complete
interoperability bridge can be shipped as data and loaded at runtime::

    <Bridge name="slp-to-bonjour" initial="SLP">
      <Automata>
        <AutomatonRef name="SLP"/>
        <AutomatonRef name="mDNS"/>
      </Automata>
      <Equivalences>
        <Equivalence left="DNS_Question" right="SLP_SrvReq"/>
      </Equivalences>
      <TranslationLogic>
        <Assignment function="service_type_to_dns">
          <Field>
            <Message>DNS_Question</Message>
            <Xpath>/field/primitiveField[label='DomainName']/value</Xpath>
          </Field>
          <Field>
            <Message>SLP_SrvReq</Message>
            <Xpath>/field/primitiveField[label='SRVType']/value</Xpath>
          </Field>
        </Assignment>
      </TranslationLogic>
      <DeltaTransitions>
        <Delta source="SLP.s11" target="mDNS.s40"/>
        <Delta source="mDNS.s42" target="SLP.s11">
          <Action name="set_host">
            <Argument message="SSDP_Resp" field="IP"/>
          </Action>
        </Delta>
      </DeltaTransitions>
    </Bridge>

As in Fig. 8, the *first* ``<Field>`` of an assignment is the target and the
second is the source.  The ``<Xpath>`` child uses the paper's XPath notation;
a ``<Path>`` child with a dotted path is accepted as an alternative.

Because the component automata are separate documents (see
:mod:`repro.core.automata.xml_loader`), loading a bridge takes the already
loaded automata as input and wires them into a
:class:`~repro.core.automata.merge.MergedAutomaton`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

from ..errors import TranslationError
from ..fieldpath import FieldPath
from .logic import Assignment, MessageFieldRef, TranslationLogic

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from ..automata.colored import ColoredAutomaton
    from ..automata.merge import MergedAutomaton

__all__ = ["load_bridge", "loads_bridge", "dump_bridge", "dumps_bridge"]


def loads_bridge(document: str, automata: Sequence["ColoredAutomaton"]) -> "MergedAutomaton":
    """Parse a ``<Bridge>`` document into a merged automaton.

    ``automata`` provides the component coloured automata referenced by the
    document's ``<AutomatonRef>`` entries.
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise TranslationError(f"malformed bridge XML: {exc}") from exc
    return _from_element(root, automata)


def load_bridge(
    path: Union[str, "os.PathLike[str]"], automata: Sequence["ColoredAutomaton"]
) -> "MergedAutomaton":  # noqa: F821
    with open(path, "r", encoding="utf-8") as handle:
        return loads_bridge(handle.read(), automata)


def dumps_bridge(merged: "MergedAutomaton") -> str:
    """Serialise a merged automaton (with its translation logic) to XML."""
    root = _to_element(merged)
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def dump_bridge(merged: "MergedAutomaton", path: Union[str, "os.PathLike[str]"]) -> None:  # noqa: F821
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_bridge(merged))


# ----------------------------------------------------------------------
# XML -> model
# ----------------------------------------------------------------------
def _field_ref_from_element(element: ET.Element) -> MessageFieldRef:
    message = (element.findtext("Message") or "").strip()
    state = (element.findtext("State") or "").strip()
    xpath = element.findtext("Xpath")
    path = element.findtext("Path")
    if xpath:
        field = FieldPath(xpath.strip()).dotted
    elif path:
        field = path.strip()
    else:
        raise TranslationError("assignment <Field> needs an <Xpath> or <Path> child")
    if not message:
        raise TranslationError("assignment <Field> needs a <Message> child")
    return MessageFieldRef(message=message, field=field, state=state)


def _from_element(root: ET.Element, automata: Sequence["ColoredAutomaton"]) -> "MergedAutomaton":
    from ..automata.merge import LambdaAction, MergedAutomaton

    if root.tag != "Bridge":
        raise TranslationError(f"expected <Bridge> root element, got <{root.tag}>")
    name = root.get("name", "bridge")
    available: Dict[str, "ColoredAutomaton"] = {a.name: a for a in automata}

    referenced: List["ColoredAutomaton"] = []
    automata_element = root.find("Automata")
    if automata_element is not None:
        for reference in automata_element.findall("AutomatonRef"):
            reference_name = reference.get("name", "")
            if reference_name not in available:
                raise TranslationError(
                    f"bridge '{name}' references unknown automaton '{reference_name}'"
                )
            referenced.append(available[reference_name])
    else:
        referenced = list(automata)

    translation = TranslationLogic()
    equivalences_element = root.find("Equivalences")
    if equivalences_element is not None:
        for equivalence in equivalences_element.findall("Equivalence"):
            translation.declare_equivalent(
                equivalence.get("left", ""), equivalence.get("right", "")
            )

    logic_element = root.find("TranslationLogic")
    if logic_element is not None:
        for assignment_element in logic_element.findall("Assignment"):
            fields = assignment_element.findall("Field")
            if len(fields) != 2:
                raise TranslationError(
                    "each <Assignment> needs exactly two <Field> children "
                    "(target first, source second)"
                )
            function = assignment_element.get("function") or None
            arguments = tuple(
                (argument.text or "").strip()
                for argument in assignment_element.findall("FunctionArgument")
            )
            translation.add_assignment(
                Assignment(
                    target=_field_ref_from_element(fields[0]),
                    source=_field_ref_from_element(fields[1]),
                    function=function,
                    function_arguments=arguments,
                )
            )

    merged = MergedAutomaton(
        name,
        referenced,
        translation=translation,
        initial_automaton=root.get("initial") or referenced[0].name,
    )

    deltas_element = root.find("DeltaTransitions")
    if deltas_element is not None:
        for delta_element in deltas_element.findall("Delta"):
            actions: List["LambdaAction"] = []
            for action_element in delta_element.findall("Action"):
                arguments = tuple(
                    MessageFieldRef(
                        message=argument.get("message", ""),
                        field=argument.get("field", ""),
                        state=argument.get("state", ""),
                    )
                    for argument in action_element.findall("Argument")
                )
                actions.append(LambdaAction(action_element.get("name", ""), arguments))
            merged.add_delta(
                delta_element.get("source", ""),
                delta_element.get("target", ""),
                actions,
            )
    return merged


# ----------------------------------------------------------------------
# model -> XML
# ----------------------------------------------------------------------
def _field_ref_to_element(reference: MessageFieldRef) -> ET.Element:
    element = ET.Element("Field")
    message = ET.SubElement(element, "Message")
    message.text = reference.message
    if reference.state:
        state = ET.SubElement(element, "State")
        state.text = reference.state
    xpath = ET.SubElement(element, "Xpath")
    xpath.text = FieldPath(reference.field).xpath
    return element


def _to_element(merged: "MergedAutomaton") -> ET.Element:
    root = ET.Element(
        "Bridge", {"name": merged.name, "initial": merged.initial_automaton.name}
    )
    automata_element = ET.SubElement(root, "Automata")
    for automaton_name in merged.automaton_names:
        ET.SubElement(automata_element, "AutomatonRef", {"name": automaton_name})

    translation = merged.translation
    if translation.equivalences:
        equivalences_element = ET.SubElement(root, "Equivalences")
        for left, right in translation.equivalences:
            ET.SubElement(equivalences_element, "Equivalence", {"left": left, "right": right})

    if translation.assignments:
        logic_element = ET.SubElement(root, "TranslationLogic")
        for assignment in translation.assignments:
            attributes = {}
            if assignment.function:
                attributes["function"] = assignment.function
            assignment_element = ET.SubElement(logic_element, "Assignment", attributes)
            assignment_element.append(_field_ref_to_element(assignment.target))
            assignment_element.append(_field_ref_to_element(assignment.source))
            for argument in assignment.function_arguments:
                argument_element = ET.SubElement(assignment_element, "FunctionArgument")
                argument_element.text = argument

    if merged.deltas:
        deltas_element = ET.SubElement(root, "DeltaTransitions")
        for delta in merged.deltas:
            delta_element = ET.SubElement(
                deltas_element,
                "Delta",
                {
                    "source": f"{delta.source_automaton}.{delta.source_state}",
                    "target": f"{delta.target_automaton}.{delta.target_state}",
                },
            )
            for action in delta.actions:
                action_element = ET.SubElement(delta_element, "Action", {"name": action.name})
                for argument in action.arguments:
                    attributes = {"message": argument.message, "field": argument.field}
                    if argument.state:
                        attributes["state"] = argument.state
                    ET.SubElement(action_element, "Argument", attributes)
    return root


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad

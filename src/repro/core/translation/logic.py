"""Translation logic: field assignments between semantically equivalent messages.

Section III-D: once the merged automaton says *when* to translate, the
translation logic says *what* to translate.  Its central operation is the
assignment (equations 5 and 6 of the paper)::

    s1_i.m1.field_a = s2_j.m2.field_b          # same-type copy
    s1_i.m1.field_a = T(s2_j.m2.field_b)       # through a translation function

The left-hand side addresses a field of a message to be sent from a state
of one automaton; the right-hand side addresses a field of a message stored
in the queue of a state of another (or the same) automaton.  ``T`` is a
translation function used when the content is not directly assignable
(different types or encodings).

A :class:`TranslationLogic` bundles the three parts of Fig. 5:

1. the message-kind equivalences (lines 1-3),
2. the assignments (lines 4-9), and
3. the δ-transition specifications (lines 10-12) — those live in
   :class:`~repro.core.automata.merge.MergedAutomaton`, but the XML bridge
   document keeps them together, so the logic records them as opaque
   references for round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import TranslationError
from ..fieldpath import FieldPath
from ..message import AbstractMessage
from .functions import TranslationFunctionRegistry, default_translation_registry

__all__ = ["MessageFieldRef", "Assignment", "TranslationLogic"]


@dataclass(frozen=True)
class MessageFieldRef:
    """A reference ``state.message.field`` used on either side of an assignment.

    ``state`` may be empty when the reference is resolved purely by message
    name (the engine keeps the latest instance of every message kind, which
    matches the paper's one-instance-per-state queues for the discovery
    case studies).
    """

    message: str
    field: str
    state: str = ""

    def path(self) -> FieldPath:
        return FieldPath(self.field)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = f"{self.state}." if self.state else ""
        return f"{prefix}{self.message}.{self.field}"


@dataclass(frozen=True)
class Assignment:
    """``target = T(source)`` — one field assignment of the translation logic."""

    target: MessageFieldRef
    source: MessageFieldRef
    #: Name of the translation function ``T``; ``None`` means plain copy (eq. 5).
    function: Optional[str] = None
    #: Extra literal arguments passed to the translation function.
    function_arguments: Tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rhs = str(self.source)
        if self.function:
            rhs = f"{self.function}({rhs})"
        return f"{self.target} = {rhs}"


class TranslationLogic:
    """The set of equivalences and assignments for one merged automaton."""

    def __init__(
        self,
        equivalences: Optional[Sequence[Tuple[str, str]]] = None,
        assignments: Optional[Sequence[Assignment]] = None,
        functions: Optional[TranslationFunctionRegistry] = None,
    ) -> None:
        self._equivalences: List[Tuple[str, str]] = list(equivalences or [])
        self._assignments: List[Assignment] = list(assignments or [])
        self.functions = functions if functions is not None else default_translation_registry()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def declare_equivalent(self, left: str, right: str) -> "TranslationLogic":
        """Record ``left |= right`` (Fig. 5 lines 1-3)."""
        self._equivalences.append((left, right))
        return self

    def assign(
        self,
        target: str,
        source: str,
        function: Optional[str] = None,
        *function_arguments: str,
    ) -> "TranslationLogic":
        """Add an assignment using ``"Message.field"`` shorthand strings.

        ``target`` and ``source`` are ``"[state:]Message.field"`` — the
        optional state prefix is separated by a colon, the message and the
        (possibly dotted) field path by the first dot.
        """
        self._assignments.append(
            Assignment(
                self._parse_ref(target),
                self._parse_ref(source),
                function,
                tuple(function_arguments),
            )
        )
        return self

    def add_assignment(self, assignment: Assignment) -> "TranslationLogic":
        self._assignments.append(assignment)
        return self

    @staticmethod
    def _parse_ref(text: str) -> MessageFieldRef:
        state = ""
        rest = text.strip()
        if ":" in rest:
            state, _, rest = rest.partition(":")
        if "." not in rest:
            raise TranslationError(
                f"assignment reference {text!r} must be '[state:]Message.field'"
            )
        message, _, field_path = rest.partition(".")
        return MessageFieldRef(message=message, field=field_path, state=state.strip())

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def equivalences(self) -> List[Tuple[str, str]]:
        return list(self._equivalences)

    @property
    def assignments(self) -> List[Assignment]:
        return list(self._assignments)

    def assignments_for(self, target_message: str) -> List[Assignment]:
        """All assignments whose target is a field of ``target_message``."""
        return [a for a in self._assignments if a.target.message == target_message]

    def source_messages_for(self, target_message: str) -> List[str]:
        """Message kinds read by the assignments targeting ``target_message``."""
        seen: List[str] = []
        for assignment in self.assignments_for(target_message):
            if assignment.source.message not in seen:
                seen.append(assignment.source.message)
        return seen

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(
        self,
        target: AbstractMessage,
        instances: Dict[str, AbstractMessage],
        context: Optional[Dict[str, Any]] = None,
        strict: bool = False,
    ) -> AbstractMessage:
        """Fill ``target`` by executing every assignment targeting it.

        ``instances`` maps message names to the latest received/constructed
        instance of that kind (the engine builds it from the state queues).
        ``context`` carries engine-provided values translation functions may
        need (e.g. the bridge's own HTTP endpoint).  With ``strict`` a
        missing source instance or field raises
        :class:`~repro.core.errors.TranslationError`; otherwise the
        assignment is skipped.
        """
        for assignment in self.assignments_for(target.name):
            source_instance = instances.get(assignment.source.message)
            if source_instance is None:
                if assignment.source.message == target.name:
                    source_instance = target
                elif strict:
                    raise TranslationError(
                        f"no instance of source message '{assignment.source.message}' "
                        f"available for assignment {assignment}"
                    )
                else:
                    continue
            source_path = assignment.source.path()
            if not source_path.exists(source_instance):
                if strict:
                    raise TranslationError(
                        f"source field missing for assignment {assignment}"
                    )
                continue
            value = source_path.resolve(source_instance)
            if assignment.function:
                value = self.functions.apply(
                    assignment.function,
                    value,
                    arguments=assignment.function_arguments,
                    context=context or {},
                    source=source_instance,
                    target=target,
                )
            assignment.target.path().assign(target, value)
        return target

    def __repr__(self) -> str:
        return (
            f"TranslationLogic(equivalences={len(self._equivalences)}, "
            f"assignments={len(self._assignments)})"
        )

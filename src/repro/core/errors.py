"""Exception hierarchy for the Starlink reproduction.

Every error raised by the library derives from :class:`StarlinkError`, so
applications embedding the framework can catch a single base class.  The
sub-classes mirror the major subsystems of the paper: message modelling,
MDL interpretation (parsing/composing), automata execution, merging, and
translation.
"""

from __future__ import annotations


class StarlinkError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class MessageError(StarlinkError):
    """Problems with abstract messages (unknown fields, bad field kinds)."""


class FieldNotFoundError(MessageError, KeyError):
    """A field path did not resolve to a field of an abstract message."""

    def __init__(self, path: str, message_name: str = "") -> None:
        self.path = path
        self.message_name = message_name
        where = f" in message '{message_name}'" if message_name else ""
        super().__init__(f"field path '{path}' not found{where}")


class TypeSystemError(StarlinkError):
    """Unknown field types or marshalling failures."""


class MarshallingError(TypeSystemError):
    """A value could not be converted to or from its wire representation."""


class MDLError(StarlinkError):
    """Errors in Message Description Language specifications."""


class MDLSpecificationError(MDLError):
    """The MDL specification itself is malformed or inconsistent."""


class ParseError(MDLError):
    """A concrete network message could not be parsed into an abstract message."""


class ComposeError(MDLError):
    """An abstract message could not be composed into a concrete message."""


class AutomatonError(StarlinkError):
    """Errors building or executing a (k-coloured) automaton."""


class InvalidTransitionError(AutomatonError):
    """A transition refers to unknown states or is otherwise invalid."""


class ColorMismatchError(AutomatonError):
    """A send/receive transition crosses states with different colours.

    The paper requires that ordinary transitions connect states of the same
    colour; only delta-transitions may change colour.
    """


class MergeError(StarlinkError):
    """The merge constraints of Section III-C are not satisfied."""


class NotMergeableError(MergeError):
    """Two automata have no valid delta-transitions and cannot interoperate."""


class TranslationError(StarlinkError):
    """Errors applying translation logic (assignments, functions, actions)."""


class EngineError(StarlinkError):
    """Errors raised by the automata engine or the bridge runtime."""


class NetworkError(StarlinkError):
    """Errors raised by a network engine implementation."""


class DeliveryError(NetworkError):
    """A message could not be delivered to any endpoint."""


class TimeoutError_(NetworkError):
    """A blocking receive exceeded its deadline.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`TimeoutError`; it still *inherits* from the built-in so callers
    may catch either.
    """


class ConfigurationError(StarlinkError):
    """A model or engine was configured inconsistently."""

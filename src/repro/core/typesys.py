"""Type system and pluggable (un)marshallers for MDL field types.

Section IV-A of the paper: *"To underpin the reading and writing of data
from messages, Starlink employs pluggable marshallers and unmarshallers for
each of the types. [...] This mechanism allows the language to be
dynamically extended to incorporate complex types (with no need to
re-implement a compiler)."*

A :class:`Marshaller` converts between a Python value and its wire
representation; the binary MDL interpreter drives marshallers through a
:class:`BitBuffer` so that field lengths expressed in *bits* (``<XID>16</XID>``,
``<MessageLength>24</MessageLength>``) work even when they are not multiples
of eight.

The registry ships the types used by the paper's case studies — ``Integer``,
``String``, ``Bytes``, ``Boolean`` and ``FQDN`` (fully-qualified domain
names in DNS label encoding, used by the Bonjour/mDNS MDL) — and accepts
plug-ins for new types at runtime, exactly as the paper's FQDN example
describes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .errors import MarshallingError, TypeSystemError

__all__ = [
    "BitBuffer",
    "Marshaller",
    "IntegerMarshaller",
    "StringMarshaller",
    "BytesMarshaller",
    "BooleanMarshaller",
    "FQDNMarshaller",
    "TypeRegistry",
    "default_registry",
]


class BitBuffer:
    """A read/write buffer addressed in bits.

    Binary MDL field lengths are expressed in bits; most are byte-aligned
    (8, 16, 24 bits) but the buffer supports arbitrary widths so that
    protocols with sub-byte flags can be described too.
    """

    def __init__(self, data: bytes = b"") -> None:
        self._bits: list[int] = []
        for byte in data:
            for shift in range(7, -1, -1):
                self._bits.append((byte >> shift) & 1)
        self._pos = 0

    # -- reading -------------------------------------------------------
    @property
    def position(self) -> int:
        """Current read position, in bits."""
        return self._pos

    @property
    def remaining_bits(self) -> int:
        return len(self._bits) - self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._bits)

    def seek(self, bit_position: int) -> None:
        if bit_position < 0 or bit_position > len(self._bits):
            raise MarshallingError(f"seek position {bit_position} out of range")
        self._pos = bit_position

    def read_uint(self, nbits: int) -> int:
        """Read ``nbits`` as an unsigned big-endian integer."""
        if nbits < 0:
            raise MarshallingError("cannot read a negative number of bits")
        if self._pos + nbits > len(self._bits):
            raise MarshallingError(
                f"buffer underrun: need {nbits} bits, have {self.remaining_bits}"
            )
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self._bits[self._pos]
            self._pos += 1
        return value

    def read_bytes(self, nbytes: int) -> bytes:
        return bytes(self.read_uint(8) for _ in range(nbytes))

    def read_rest(self) -> bytes:
        """Read all remaining (byte-aligned) content."""
        nbytes = self.remaining_bits // 8
        return self.read_bytes(nbytes)

    # -- writing -------------------------------------------------------
    def write_uint(self, value: int, nbits: int) -> None:
        """Append ``value`` as an unsigned big-endian integer of ``nbits``."""
        if value < 0:
            raise MarshallingError(f"cannot write negative value {value} as unsigned")
        if nbits < 0:
            raise MarshallingError("cannot write a negative number of bits")
        if nbits < value.bit_length():
            raise MarshallingError(
                f"value {value} does not fit in {nbits} bits"
            )
        for shift in range(nbits - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write_uint(byte, 8)

    def to_bytes(self) -> bytes:
        """Return the buffer content, zero-padded to a whole byte."""
        bits = list(self._bits)
        while len(bits) % 8:
            bits.append(0)
        out = bytearray()
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)

    def __len__(self) -> int:
        """Total buffer length in bits."""
        return len(self._bits)


class Marshaller:
    """Converts values of one MDL type to and from the wire.

    Sub-classes implement :meth:`marshal` (value -> BitBuffer) and
    :meth:`unmarshal` (BitBuffer -> value).  ``length_bits`` is ``None``
    when the field length is unknown in advance (delimited text fields or
    self-describing encodings such as DNS names).
    """

    #: Name under which the marshaller registers by default.
    type_name: str = "Opaque"
    #: Python type produced by :meth:`unmarshal` (informational).
    python_type: type = bytes

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        raise NotImplementedError

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> Any:
        raise NotImplementedError

    # -- text protocols --------------------------------------------------
    def to_text(self, value: Any) -> str:
        """Render ``value`` for a text protocol (default: ``str``)."""
        return "" if value is None else str(value)

    def from_text(self, text: str) -> Any:
        """Parse ``text`` from a text protocol (default: identity)."""
        return text

    def wire_length_bits(self, value: Any) -> int:
        """Length in bits that ``value`` occupies once marshalled."""
        probe = BitBuffer()
        self.marshal(value, probe, None)
        return len(probe)


class IntegerMarshaller(Marshaller):
    """Unsigned big-endian integers of a fixed bit width."""

    type_name = "Integer"
    python_type = int

    def __init__(self, default_bits: int = 32) -> None:
        self.default_bits = default_bits

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        if value is None:
            value = 0
        try:
            ivalue = int(value)
        except (TypeError, ValueError) as exc:
            raise MarshallingError(f"cannot marshal {value!r} as Integer") from exc
        buffer.write_uint(ivalue, length_bits if length_bits is not None else self.default_bits)

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> int:
        return buffer.read_uint(length_bits if length_bits is not None else self.default_bits)

    def from_text(self, text: str) -> int:
        try:
            return int(text.strip())
        except ValueError as exc:
            raise MarshallingError(f"cannot parse {text!r} as Integer") from exc

    def wire_length_bits(self, value: Any) -> int:
        return self.default_bits


class StringMarshaller(Marshaller):
    """Character strings encoded with a configurable codec (default UTF-8)."""

    type_name = "String"
    python_type = str

    def __init__(self, encoding: str = "utf-8") -> None:
        self.encoding = encoding

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        text = "" if value is None else str(value)
        data = text.encode(self.encoding)
        if length_bits is not None:
            expected = length_bits // 8
            if len(data) > expected:
                raise MarshallingError(
                    f"string {text!r} is {len(data)} bytes; field allows {expected}"
                )
            data = data.ljust(expected, b"\x00")
        buffer.write_bytes(data)

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> str:
        if length_bits is None:
            data = buffer.read_rest()
        else:
            data = buffer.read_bytes(length_bits // 8)
        return data.rstrip(b"\x00").decode(self.encoding)

    def wire_length_bits(self, value: Any) -> int:
        text = "" if value is None else str(value)
        return len(text.encode(self.encoding)) * 8


class BytesMarshaller(Marshaller):
    """Raw byte strings."""

    type_name = "Bytes"
    python_type = bytes

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        data = bytes(value) if value is not None else b""
        if length_bits is not None:
            expected = length_bits // 8
            if len(data) > expected:
                raise MarshallingError(
                    f"byte field is {len(data)} bytes; field allows {expected}"
                )
            data = data.ljust(expected, b"\x00")
        buffer.write_bytes(data)

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> bytes:
        if length_bits is None:
            return buffer.read_rest()
        return buffer.read_bytes(length_bits // 8)

    def from_text(self, text: str) -> bytes:
        return text.encode("utf-8")

    def to_text(self, value: Any) -> str:
        if isinstance(value, bytes):
            return value.decode("utf-8", errors="replace")
        return super().to_text(value)

    def wire_length_bits(self, value: Any) -> int:
        return len(bytes(value) if value is not None else b"") * 8


class BooleanMarshaller(Marshaller):
    """Single-bit (by default) boolean flags."""

    type_name = "Boolean"
    python_type = bool

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        buffer.write_uint(1 if value else 0, length_bits if length_bits is not None else 1)

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> bool:
        return bool(buffer.read_uint(length_bits if length_bits is not None else 1))

    def from_text(self, text: str) -> bool:
        return text.strip().lower() in {"1", "true", "yes", "on"}

    def wire_length_bits(self, value: Any) -> int:
        return 1


class FQDNMarshaller(Marshaller):
    """Fully qualified domain names in DNS label encoding.

    This is the paper's example of a pluggable complex type: a sequence of
    length-prefixed labels terminated by a zero-length label, decoded to a
    dotted Python string (``"_testservice._tcp.local"``).
    """

    type_name = "FQDN"
    python_type = str

    def marshal(self, value: Any, buffer: BitBuffer, length_bits: Optional[int]) -> None:
        name = "" if value is None else str(value)
        name = name.strip(".")
        if name:
            for label in name.split("."):
                data = label.encode("utf-8")
                if len(data) > 63:
                    raise MarshallingError(f"DNS label too long: {label!r}")
                buffer.write_uint(len(data), 8)
                buffer.write_bytes(data)
        buffer.write_uint(0, 8)

    def unmarshal(self, buffer: BitBuffer, length_bits: Optional[int]) -> str:
        labels = []
        while True:
            length = buffer.read_uint(8)
            if length == 0:
                break
            labels.append(buffer.read_bytes(length).decode("utf-8"))
        return ".".join(labels)

    def wire_length_bits(self, value: Any) -> int:
        name = ("" if value is None else str(value)).strip(".")
        if not name:
            return 8
        total = 1  # terminating zero label
        for label in name.split("."):
            total += 1 + len(label.encode("utf-8"))
        return total * 8


class TypeRegistry:
    """Registry of marshallers keyed by MDL type name.

    The registry is the runtime-extensibility point of the MDL design: new
    protocol-specific types can be plugged in without touching the generic
    parser or composer.
    """

    def __init__(self) -> None:
        self._marshallers: Dict[str, Marshaller] = {}

    def register(self, type_name: str, marshaller: Marshaller) -> None:
        """Register ``marshaller`` under ``type_name`` (overwrites silently)."""
        self._marshallers[type_name] = marshaller

    def register_default_types(self) -> "TypeRegistry":
        self.register("Integer", IntegerMarshaller())
        self.register("String", StringMarshaller())
        self.register("Bytes", BytesMarshaller())
        self.register("Boolean", BooleanMarshaller())
        self.register("FQDN", FQDNMarshaller())
        return self

    def get(self, type_name: str) -> Marshaller:
        try:
            return self._marshallers[type_name]
        except KeyError:
            raise TypeSystemError(f"no marshaller registered for type '{type_name}'") from None

    def has(self, type_name: str) -> bool:
        return type_name in self._marshallers

    def type_names(self) -> list[str]:
        return sorted(self._marshallers)

    def copy(self) -> "TypeRegistry":
        clone = TypeRegistry()
        clone._marshallers = dict(self._marshallers)
        return clone


def default_registry() -> TypeRegistry:
    """Return a fresh registry with the built-in types registered."""
    return TypeRegistry().register_default_types()

"""Core Starlink models and engines.

This package holds the paper's primary contribution: abstract messages,
the Message Description Language with its generic parsers/composers,
k-coloured and merged automata, translation logic, and the runtime engines
that execute them.
"""

from .errors import (
    AutomatonError,
    ComposeError,
    ConfigurationError,
    EngineError,
    MDLError,
    MergeError,
    MessageError,
    NetworkError,
    NotMergeableError,
    ParseError,
    StarlinkError,
    TranslationError,
)
from .fieldpath import FieldPath
from .message import AbstractMessage, PrimitiveField, StructuredField

__all__ = [
    "AbstractMessage",
    "PrimitiveField",
    "StructuredField",
    "FieldPath",
    "StarlinkError",
    "MessageError",
    "MDLError",
    "ParseError",
    "ComposeError",
    "AutomatonError",
    "MergeError",
    "NotMergeableError",
    "TranslationError",
    "EngineError",
    "NetworkError",
    "ConfigurationError",
]

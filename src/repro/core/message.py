"""Abstract messages: the protocol-independent message representation.

Section III-A of the paper defines an *abstract message* as a set of fields,
either primitive or structured:

* a **primitive field** has a *label* naming the field, a *type* describing
  the data content, a *length* in bits, and the *value* itself;
* a **structured field** groups several primitive (or structured) fields
  under one label — e.g. a ``URL`` field made of protocol, address, port and
  resource location.

Abstract messages are the interface between the Starlink framework and the
underlying network messages: generic parsers produce them from received
bytes, translation logic reads and writes their fields, and generic
composers serialise them back to bytes.

The paper notes ``msg.field`` as the operation selecting a field from a
message; here that is :meth:`AbstractMessage.get` /
:meth:`AbstractMessage.__getitem__`, and dotted paths (``URL.port``) reach
into structured fields (see :mod:`repro.core.fieldpath` for the richer
XPath-equivalent used by XML translation logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from .errors import FieldNotFoundError, MessageError

__all__ = [
    "PrimitiveField",
    "StructuredField",
    "Field",
    "AbstractMessage",
]


@dataclass
class PrimitiveField:
    """A single labelled value carried by an abstract message.

    Parameters
    ----------
    label:
        The name of the field (e.g. ``"XID"`` or ``"ServiceType"``).
    type_name:
        The name of the field type as declared in the MDL ``<Types>``
        section (e.g. ``"Integer"``, ``"String"``, ``"FQDN"``).
    length_bits:
        The length of the field on the wire, in bits.  ``None`` means the
        length is variable or determined by another field / delimiter.
    value:
        The decoded content of the field.  Its Python type is whatever the
        marshaller for ``type_name`` produces (``int`` for ``Integer``,
        ``str`` for ``String``...).
    """

    label: str
    type_name: str = "String"
    length_bits: Optional[int] = None
    value: Any = None

    @property
    def is_primitive(self) -> bool:
        return True

    @property
    def is_structured(self) -> bool:
        return False

    def copy(self) -> "PrimitiveField":
        """Return an independent copy of this field."""
        return PrimitiveField(self.label, self.type_name, self.length_bits, self.value)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.label}={self.value!r}:{self.type_name}"


@dataclass
class StructuredField:
    """A field composed of several sub-fields.

    The paper's example is a ``URL`` field composed of the primitive fields
    ``protocol``, ``address``, ``port`` and ``resource``.
    """

    label: str
    fields: List["Field"] = field(default_factory=list)

    @property
    def is_primitive(self) -> bool:
        return False

    @property
    def is_structured(self) -> bool:
        return True

    def add(self, child: "Field") -> "StructuredField":
        """Append ``child`` and return ``self`` (for fluent construction)."""
        self.fields.append(child)
        return self

    def get(self, label: str) -> "Field":
        """Return the direct child field named ``label``."""
        for child in self.fields:
            if child.label == label:
                return child
        raise FieldNotFoundError(label, self.label)

    def has(self, label: str) -> bool:
        return any(child.label == label for child in self.fields)

    def labels(self) -> List[str]:
        return [child.label for child in self.fields]

    def copy(self) -> "StructuredField":
        return StructuredField(self.label, [child.copy() for child in self.fields])

    def __iter__(self) -> Iterator["Field"]:
        return iter(self.fields)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(str(child) for child in self.fields)
        return f"{self.label}{{{inner}}}"


Field = Union[PrimitiveField, StructuredField]


class AbstractMessage:
    """A protocol-independent representation of one network message.

    An abstract message has a *name* — the message type label used by
    automata transitions (e.g. ``"SLP_SrvReq"`` or ``"SSDP_M-Search"``) — an
    ordered collection of fields, and a set of *mandatory field* labels used
    by the semantic-equivalence operator of Section III-C
    (``Mfields(n)`` in the paper).

    The class behaves like a mapping from field labels to values for the
    common case of primitive top-level fields, while still exposing the full
    field objects for structured access.
    """

    def __init__(
        self,
        name: str,
        fields: Optional[Sequence[Field]] = None,
        mandatory: Optional[Sequence[str]] = None,
        protocol: str = "",
    ) -> None:
        self.name = name
        #: Name of the protocol this message belongs to (informational).
        self.protocol = protocol
        self._fields: List[Field] = list(fields) if fields else []
        self._mandatory: List[str] = list(mandatory) if mandatory else []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_field(self, f: Field) -> "AbstractMessage":
        """Append a field object and return ``self``."""
        self._fields.append(f)
        return self

    def set(
        self,
        label: str,
        value: Any,
        type_name: str = "String",
        length_bits: Optional[int] = None,
    ) -> "AbstractMessage":
        """Set (create or overwrite) a top-level primitive field.

        Dotted labels (``"URL.port"``) address a primitive field inside a
        structured field, creating the structured parent if necessary.
        """
        if "." in label:
            parent_label, _, child_label = label.partition(".")
            parent = self._find(parent_label)
            if parent is None:
                parent = StructuredField(parent_label)
                self._fields.append(parent)
            if not isinstance(parent, StructuredField):
                raise MessageError(
                    f"field '{parent_label}' of message '{self.name}' is primitive; "
                    f"cannot set sub-field '{child_label}'"
                )
            if parent.has(child_label):
                child = parent.get(child_label)
                if isinstance(child, StructuredField):
                    raise MessageError(
                        f"field '{label}' of message '{self.name}' is structured; "
                        "cannot assign a primitive value to it"
                    )
                child.value = value
                child.type_name = type_name
                if length_bits is not None:
                    child.length_bits = length_bits
            else:
                parent.add(PrimitiveField(child_label, type_name, length_bits, value))
            return self

        existing = self._find(label)
        if existing is None:
            self._fields.append(PrimitiveField(label, type_name, length_bits, value))
        elif isinstance(existing, PrimitiveField):
            existing.value = value
            existing.type_name = type_name
            if length_bits is not None:
                existing.length_bits = length_bits
        else:
            raise MessageError(
                f"field '{label}' of message '{self.name}' is structured; "
                "cannot assign a primitive value to it"
            )
        return self

    def mark_mandatory(self, *labels: str) -> "AbstractMessage":
        """Declare ``labels`` as mandatory fields (``Mfields`` in the paper)."""
        for label in labels:
            if label not in self._mandatory:
                self._mandatory.append(label)
        return self

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def fields(self) -> List[Field]:
        """The ordered list of top-level field objects."""
        return self._fields

    @property
    def mandatory_fields(self) -> List[str]:
        """Labels of mandatory fields; defaults to all labels if none declared."""
        if self._mandatory:
            return list(self._mandatory)
        return self.labels()

    def labels(self) -> List[str]:
        return [f.label for f in self._fields]

    def _find(self, label: str) -> Optional[Field]:
        for f in self._fields:
            if f.label == label:
                return f
        return None

    def field(self, path: str) -> Field:
        """Return the field object addressed by ``path`` (dotted labels)."""
        parts = path.split(".")
        current: Field
        found = self._find(parts[0])
        if found is None:
            raise FieldNotFoundError(path, self.name)
        current = found
        for part in parts[1:]:
            if not isinstance(current, StructuredField):
                raise FieldNotFoundError(path, self.name)
            try:
                current = current.get(part)
            except FieldNotFoundError:
                raise FieldNotFoundError(path, self.name) from None
        return current

    def has(self, path: str) -> bool:
        """Return ``True`` when ``path`` resolves to a field of this message."""
        try:
            self.field(path)
            return True
        except FieldNotFoundError:
            return False

    def get(self, path: str, default: Any = None) -> Any:
        """Return the *value* of a primitive field, or ``default`` if absent."""
        try:
            f = self.field(path)
        except FieldNotFoundError:
            return default
        if isinstance(f, StructuredField):
            return f
        return f.value

    def __getitem__(self, path: str) -> Any:
        f = self.field(path)
        if isinstance(f, StructuredField):
            return f
        return f.value

    def __setitem__(self, path: str, value: Any) -> None:
        self.set(path, value)

    def __contains__(self, path: str) -> bool:
        return self.has(path)

    def values(self) -> Dict[str, Any]:
        """Return a flat mapping of dotted field paths to primitive values."""
        out: Dict[str, Any] = {}

        def walk(prefix: str, fields: Sequence[Field]) -> None:
            for f in fields:
                path = f"{prefix}{f.label}"
                if isinstance(f, PrimitiveField):
                    out[path] = f.value
                else:
                    walk(path + ".", f.fields)

        walk("", self._fields)
        return out

    # ------------------------------------------------------------------
    # comparison / copying
    # ------------------------------------------------------------------
    def copy(self) -> "AbstractMessage":
        """Return a deep, independent copy of this message."""
        clone = AbstractMessage(
            self.name,
            [f.copy() for f in self._fields],
            list(self._mandatory),
            self.protocol,
        )
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractMessage):
            return NotImplemented
        return (
            self.name == other.name
            and self.values() == other.values()
            and self.labels() == other.labels()
        )

    def __hash__(self) -> int:  # messages are mutable; identity hash only
        return id(self)

    def __repr__(self) -> str:
        return f"AbstractMessage({self.name!r}, fields={self.values()!r})"

    # ------------------------------------------------------------------
    # conversion helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        name: str,
        values: Mapping[str, Any],
        mandatory: Optional[Sequence[str]] = None,
        protocol: str = "",
    ) -> "AbstractMessage":
        """Build a message from a flat (possibly dotted-path) mapping."""
        msg = cls(name, mandatory=mandatory, protocol=protocol)
        for label, value in values.items():
            type_name = "Integer" if isinstance(value, int) and not isinstance(value, bool) else "String"
            msg.set(label, value, type_name=type_name)
        return msg

    def to_dict(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_dict` (loses type/length metadata)."""
        return self.values()
